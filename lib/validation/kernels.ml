(* Compiled per-rule validation kernels.

   Every rule of Section 5 (WS1-WS4, DS1-DS7, SS1-SS4) is implemented as
   a pure function over one element of a frozen {!Pg_graph.Snapshot}
   resolved against a compiled {!Pg_schema.Plan}.  All hot-path
   comparisons are integer equalities on interned symbols and bitset
   probes of the precomputed subtype matrix — no string hashing, no
   per-run memo caches.  Strings reappear only when a violation is
   actually reported.

   The pair rules read the snapshot's sorted CSR segments instead of
   global group tables: the out segment of a node is sorted by (label,
   target, id), so WS4 groups are label runs, DS1 groups are (label,
   target) sub-runs and DS2 loops are the entries targeting the node
   itself; the in segment is sorted by (label, source, id) for DS3.
   Every rule therefore slices either the node range [0, snap.n) or the
   edge range [0, snap.m) — except DS7, which groups nodes globally per
   @key constraint and parallelizes across constraints.

   The same per-element bodies back two engine shapes: per-rule slice
   kernels ({!Indexed} sequentially, {!Parallel} sharded across domains)
   and the fused single-pass {!node_pass}/{!edge_pass} used by
   {!Linear}.  Kernels only read the frozen context, so slices commute
   and {!Violation.normalize} makes every engine's report identical. *)

module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Snapshot = Pg_graph.Snapshot
module Plan = Pg_schema.Plan
module Values_w = Pg_schema.Values_w

type ctx = {
  plan : Plan.t;
  snap : Snapshot.t;
  env : Values_w.env;
  gov : Governor.run;
}

let make_ctx ?env ?(gov = Governor.no_run) plan g =
  let env = Option.value env ~default:Values_w.default_env in
  { plan; snap = Snapshot.build (Plan.symtab plan) g; env; gov }

(* A ctx over an already-frozen snapshot (e.g. mapped back from disk by
   {!Pg_graph.Snapshot_io}).  The snapshot's symbols must already live in
   the plan's symbol table — Snapshot_io.load remaps them on the way in. *)
let ctx_of_snap ?env ?(gov = Governor.no_run) plan snap =
  let env = Option.value env ~default:Values_w.default_env in
  { plan; snap; env; gov }

(* The rules a pass evaluates: WS (weak), DS (dirs), SS extras (strong). *)
type rule_set = { weak : bool; dirs : bool; strong : bool }

type kernel = ctx -> lo:int -> hi:int -> Violation.t list -> Violation.t list

(* All unordered pairs of a group, as violations. *)
let pairwise group mk acc =
  let rec go acc = function
    | [] -> acc
    | e1 :: rest -> go (List.fold_left (fun acc e2 -> mk e1 e2 :: acc) acc rest) rest
  in
  go acc group

(* ------------------------------------------------------------------ *)
(* Per-node rule bodies                                                 *)

(* WS1: node properties must be of the required type *)
let ws1_node ctx i acc =
  let snap = ctx.snap in
  let l = snap.Snapshot.node_label.{i} in
  Array.fold_left
    (fun acc (k, value) ->
      match Plan.field ctx.plan l k with
      | Some fi when fi.Plan.fi_attr ->
        if fi.Plan.fi_mem ctx.env value then acc
        else
          Violation.make Violation.WS1
            (Violation.Node_property (snap.Snapshot.node_id.{i}, Plan.name ctx.plan k))
            (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
               fi.Plan.fi_type_str)
          :: acc
      | Some _ | None -> acc)
    acc
    snap.Snapshot.node_props.(i)

(* SS1: all nodes are justified *)
let ss1_node ctx i acc =
  let snap = ctx.snap in
  let l = snap.Snapshot.node_label.{i} in
  if Plan.is_object ctx.plan l then acc
  else
    Violation.make Violation.SS1
      (Violation.Node snap.Snapshot.node_id.{i})
      (Printf.sprintf "label %S is not an object type of the schema" (Plan.name ctx.plan l))
    :: acc

(* SS2: all node properties are justified.  Open types ([@open], lowered
   from PG-Schema OPEN/LOOSE) admit undeclared properties, so their
   nodes are exempt — WS1 still types the declared ones. *)
let ss2_node ctx i acc =
  let snap = ctx.snap in
  let l = snap.Snapshot.node_label.{i} in
  if Plan.is_open ctx.plan l then acc
  else
  Array.fold_left
    (fun acc (k, _) ->
      match Plan.field ctx.plan l k with
      | Some fi when fi.Plan.fi_attr -> acc
      | Some _ ->
        Violation.make Violation.SS2
          (Violation.Node_property (snap.Snapshot.node_id.{i}, Plan.name ctx.plan k))
          (Printf.sprintf "field %s.%s is a relationship definition, not an attribute"
             (Plan.name ctx.plan l) (Plan.name ctx.plan k))
        :: acc
      | None ->
        Violation.make Violation.SS2
          (Violation.Node_property (snap.Snapshot.node_id.{i}, Plan.name ctx.plan k))
          (Printf.sprintf "no field %S is declared for type %S" (Plan.name ctx.plan k)
             (Plan.name ctx.plan l))
        :: acc)
    acc
    snap.Snapshot.node_props.(i)

(* DS4: nodes of the target type need a qualified incoming edge *)
let ds4_node ctx i acc =
  let snap = ctx.snap in
  let l = snap.Snapshot.node_label.{i} in
  let row = Plan.required_tgt_at ctx.plan l in
  if Array.length row = 0 then acc
  else begin
    let start = snap.Snapshot.in_start.{i} and stop = snap.Snapshot.in_start.{i + 1} in
    Array.fold_left
      (fun acc (fc : Plan.field_constraint) ->
        let ok = ref false in
        let j = ref start in
        while (not !ok) && !j < stop do
          let e = snap.Snapshot.in_adj.{!j} in
          if
            snap.Snapshot.edge_label.{e} = fc.Plan.fc_field
            && Plan.is_sub ctx.plan
                 snap.Snapshot.node_label.{snap.Snapshot.edge_src.{e}}
                 fc.Plan.fc_owner
          then ok := true;
          incr j
        done;
        if !ok then acc
        else
          Violation.make Violation.DS4
            (Violation.Node snap.Snapshot.node_id.{i})
            (Printf.sprintf
               "node n%d (%S) has no incoming %S edge required by @requiredForTarget on \
                %s.%s"
               snap.Snapshot.node_id.{i} (Plan.name ctx.plan l) fc.Plan.fc_field_name
               fc.Plan.fc_owner_name fc.Plan.fc_field_name)
          :: acc)
      acc row
  end

(* DS5/DS6: @required properties and edges *)
let ds56_node ctx i acc =
  let snap = ctx.snap in
  let l = snap.Snapshot.node_label.{i} in
  let row = Plan.required_at ctx.plan l in
  if Array.length row = 0 then acc
  else begin
    let vid = snap.Snapshot.node_id.{i} in
    Array.fold_left
      (fun acc (fc : Plan.field_constraint) ->
        let fi = fc.Plan.fc_info in
        if fi.Plan.fi_attr then begin
          match Snapshot.find_prop snap.Snapshot.node_props.(i) fc.Plan.fc_field with
          | None ->
            Violation.make Violation.DS5
              (Violation.Node_property (vid, fc.Plan.fc_field_name))
              (Printf.sprintf "node n%d lacks the property %S required on %s.%s" vid
                 fc.Plan.fc_field_name fc.Plan.fc_owner_name fc.Plan.fc_field_name)
            :: acc
          | Some value ->
            if fi.Plan.fi_list then begin
              match value with
              | Value.List (_ :: _) -> acc
              | _ ->
                Violation.make Violation.DS5
                  (Violation.Node_property (vid, fc.Plan.fc_field_name))
                  (Printf.sprintf
                     "property %S of node n%d must be a nonempty list (required list \
                      attribute)"
                     fc.Plan.fc_field_name vid)
                :: acc
            end
            else acc
        end
        else begin
          let start = snap.Snapshot.out_start.{i}
          and stop = snap.Snapshot.out_start.{i + 1} in
          let ok = ref false in
          let j = ref start in
          while (not !ok) && !j < stop do
            if snap.Snapshot.edge_label.{snap.Snapshot.out_adj.{!j}} = fc.Plan.fc_field
            then ok := true;
            incr j
          done;
          if !ok then acc
          else
            Violation.make Violation.DS6 (Violation.Node vid)
              (Printf.sprintf "node n%d lacks the outgoing %S edge required on %s.%s" vid
                 fc.Plan.fc_field_name fc.Plan.fc_owner_name fc.Plan.fc_field_name)
            :: acc
        end)
      acc row
  end

(* DS1 scope: which (label, target) sub-runs of a node's out segment the
   scan reports on.  A sub-run's edges all share one target, so a sub-run
   is either entirely intra-shard or entirely cross-shard — [Ds1_intra]
   restricts to targets inside the node's own shard (the shard-local
   pass), [Ds1_cross] to targets outside it (the frontier pass), and
   [Ds1_all] is the monolithic engines' unrestricted scan. *)
type ds1_scope = Ds1_none | Ds1_all | Ds1_intra of int * int | Ds1_cross of int * int

let ds1_in_scope scope tgt =
  match scope with
  | Ds1_none -> false
  | Ds1_all -> true
  | Ds1_intra (lo, hi) -> tgt >= lo && tgt < hi
  | Ds1_cross (lo, hi) -> tgt < lo || tgt >= hi

(* WS4 / DS1 / DS2 over the label runs of a node's sorted out segment.
   The flags let the per-rule kernels and the fused pass share one run
   scan. *)
let out_rules ~ws4 ~ds1 ~ds2 ctx i acc =
  let snap = ctx.snap in
  let start = snap.Snapshot.out_start.{i} and stop = snap.Snapshot.out_start.{i + 1} in
  if start = stop then acc
  else begin
    let l = snap.Snapshot.node_label.{i} in
    let src_id = snap.Snapshot.node_id.{i} in
    let drow = if ds1 <> Ds1_none then Plan.distinct_at ctx.plan l else [||] in
    let nrow = if ds2 then Plan.no_loops_at ctx.plan l else [||] in
    let acc = ref acc in
    let lo = ref start in
    while !lo < stop do
      let f = snap.Snapshot.edge_label.{snap.Snapshot.out_adj.{!lo}} in
      let hi = ref (!lo + 1) in
      while !hi < stop && snap.Snapshot.edge_label.{snap.Snapshot.out_adj.{!hi}} = f do
        incr hi
      done;
      let lo0 = !lo and hi0 = !hi in
      (* WS4: the whole label run pairs up if the field is not a list *)
      (if ws4 && hi0 - lo0 >= 2 then
         match Plan.field ctx.plan l f with
         | Some fi when not fi.Plan.fi_list ->
           let msg =
             Printf.sprintf
               "node n%d has two %S edges but the field type %s is not a list type" src_id
               (Plan.name ctx.plan f) fi.Plan.fi_type_str
           in
           for a = lo0 to hi0 - 1 do
             for b = a + 1 to hi0 - 1 do
               acc :=
                 Violation.make Violation.WS4
                   (Violation.Edge_pair
                      ( snap.Snapshot.edge_id.{snap.Snapshot.out_adj.{a}},
                        snap.Snapshot.edge_id.{snap.Snapshot.out_adj.{b}} ))
                   msg
                 :: !acc
             done
           done
         | Some _ | None -> ());
      (* DS1: (label, target) sub-runs *)
      if Array.length drow > 0 && hi0 - lo0 >= 2 then begin
        let a = ref lo0 in
        while !a < hi0 do
          let tgt = snap.Snapshot.edge_tgt.{snap.Snapshot.out_adj.{!a}} in
          let b = ref (!a + 1) in
          while !b < hi0 && snap.Snapshot.edge_tgt.{snap.Snapshot.out_adj.{!b}} = tgt do
            incr b
          done;
          if !b - !a >= 2 && ds1_in_scope ds1 tgt then
            Array.iter
              (fun (fc : Plan.field_constraint) ->
                if fc.Plan.fc_field = f then begin
                  let msg =
                    Printf.sprintf
                      "parallel %S edges between n%d and n%d violate @distinct on %s.%s"
                      fc.Plan.fc_field_name src_id
                      snap.Snapshot.node_id.{tgt}
                      fc.Plan.fc_owner_name fc.Plan.fc_field_name
                  in
                  for x = !a to !b - 1 do
                    for y = x + 1 to !b - 1 do
                      acc :=
                        Violation.make Violation.DS1
                          (Violation.Edge_pair
                             ( snap.Snapshot.edge_id.{snap.Snapshot.out_adj.{x}},
                               snap.Snapshot.edge_id.{snap.Snapshot.out_adj.{y}} ))
                          msg
                        :: !acc
                    done
                  done
                end)
              drow;
          a := !b
        done
      end;
      (* DS2: loops are the run entries targeting the node itself *)
      if Array.length nrow > 0 then
        Array.iter
          (fun (fc : Plan.field_constraint) ->
            if fc.Plan.fc_field = f then begin
              let msg =
                Printf.sprintf "loop on node n%d violates @noLoops on %s.%s" src_id
                  fc.Plan.fc_owner_name fc.Plan.fc_field_name
              in
              for x = lo0 to hi0 - 1 do
                let e = snap.Snapshot.out_adj.{x} in
                if snap.Snapshot.edge_tgt.{e} = i then
                  acc :=
                    Violation.make Violation.DS2
                      (Violation.Edge snap.Snapshot.edge_id.{e})
                      msg
                    :: !acc
              done
            end)
          nrow;
      lo := hi0
    done;
    !acc
  end

let ws4_node ctx i acc = out_rules ~ws4:true ~ds1:Ds1_none ~ds2:false ctx i acc
let ds1_node ctx i acc = out_rules ~ws4:false ~ds1:Ds1_all ~ds2:false ctx i acc
let ds2_node ctx i acc = out_rules ~ws4:false ~ds1:Ds1_none ~ds2:true ctx i acc

(* DS3: label runs of the sorted in segment, filtered per constraint to
   sources of the declaring type *)
let ds3_node ctx i acc =
  let snap = ctx.snap in
  let start = snap.Snapshot.in_start.{i} and stop = snap.Snapshot.in_start.{i + 1} in
  if stop - start < 2 then acc
  else begin
    let uts = Plan.unique_tgt ctx.plan in
    if Array.length uts = 0 then acc
    else begin
      let tgt_id = snap.Snapshot.node_id.{i} in
      let acc = ref acc in
      let lo = ref start in
      while !lo < stop do
        let f = snap.Snapshot.edge_label.{snap.Snapshot.in_adj.{!lo}} in
        let hi = ref (!lo + 1) in
        while !hi < stop && snap.Snapshot.edge_label.{snap.Snapshot.in_adj.{!hi}} = f do
          incr hi
        done;
        let lo0 = !lo and hi0 = !hi in
        if hi0 - lo0 >= 2 then
          Array.iter
            (fun (fc : Plan.field_constraint) ->
              if fc.Plan.fc_field = f then begin
                let qualified = ref [] in
                for j = hi0 - 1 downto lo0 do
                  let e = snap.Snapshot.in_adj.{j} in
                  if
                    Plan.is_sub ctx.plan
                      snap.Snapshot.node_label.{snap.Snapshot.edge_src.{e}}
                      fc.Plan.fc_owner
                  then qualified := e :: !qualified
                done;
                match !qualified with
                | [] | [ _ ] -> ()
                | q ->
                  let msg =
                    Printf.sprintf
                      "node n%d has two incoming %S edges, violating @uniqueForTarget on \
                       %s.%s"
                      tgt_id fc.Plan.fc_field_name fc.Plan.fc_owner_name
                      fc.Plan.fc_field_name
                  in
                  acc :=
                    pairwise q
                      (fun e1 e2 ->
                        Violation.make Violation.DS3
                          (Violation.Edge_pair
                             (snap.Snapshot.edge_id.{e1}, snap.Snapshot.edge_id.{e2}))
                          msg)
                      !acc
              end)
            uts;
        lo := hi0
      done;
      !acc
    end
  end

(* ------------------------------------------------------------------ *)
(* Per-edge rule bodies                                                 *)

(* WS2: edge properties must be of the required type *)
let ws2_edge ctx j acc =
  let snap = ctx.snap in
  let props = snap.Snapshot.edge_props.(j) in
  if Array.length props = 0 then acc
  else begin
    let sl = snap.Snapshot.node_label.{snap.Snapshot.edge_src.{j}} in
    match Plan.field ctx.plan sl snap.Snapshot.edge_label.{j} with
    | None -> acc
    | Some fi ->
      Array.fold_left
        (fun acc (a, value) ->
          match Plan.arg fi a with
          | Some ai ->
            if ai.Plan.ai_mem ctx.env value then acc
            else
              Violation.make Violation.WS2
                (Violation.Edge_property (snap.Snapshot.edge_id.{j}, Plan.name ctx.plan a))
                (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                   ai.Plan.ai_type_str)
              :: acc
          | None -> acc)
        acc props
  end

(* SS3: all edge properties are justified *)
let ss3_edge ctx j acc =
  let snap = ctx.snap in
  let props = snap.Snapshot.edge_props.(j) in
  if Array.length props = 0 then acc
  else begin
    let sl = snap.Snapshot.node_label.{snap.Snapshot.edge_src.{j}} in
    let f = snap.Snapshot.edge_label.{j} in
    let field = Plan.field ctx.plan sl f in
    Array.fold_left
      (fun acc (a, _) ->
        match Option.bind field (fun fi -> Plan.arg fi a) with
        | Some _ -> acc
        | None ->
          Violation.make Violation.SS3
            (Violation.Edge_property (snap.Snapshot.edge_id.{j}, Plan.name ctx.plan a))
            (Printf.sprintf "no argument %S is declared for field %s.%s"
               (Plan.name ctx.plan a) (Plan.name ctx.plan sl) (Plan.name ctx.plan f))
          :: acc)
      acc props
  end

(* WS3: target nodes must be of the required type *)
let ws3_edge ctx j acc =
  let snap = ctx.snap in
  let sl = snap.Snapshot.node_label.{snap.Snapshot.edge_src.{j}} in
  match Plan.field ctx.plan sl snap.Snapshot.edge_label.{j} with
  | Some fi ->
    let tl = snap.Snapshot.node_label.{snap.Snapshot.edge_tgt.{j}} in
    if Plan.is_sub ctx.plan tl fi.Plan.fi_base then acc
    else
      Violation.make Violation.WS3
        (Violation.Edge snap.Snapshot.edge_id.{j})
        (Printf.sprintf "target node n%d has label %S, which is not a subtype of %S"
           snap.Snapshot.node_id.{snap.Snapshot.edge_tgt.{j}}
           (Plan.name ctx.plan tl)
           (Plan.name ctx.plan fi.Plan.fi_base))
      :: acc
  | None -> acc

(* SS4: all edges are justified *)
let ss4_edge ctx j acc =
  let snap = ctx.snap in
  let sl = snap.Snapshot.node_label.{snap.Snapshot.edge_src.{j}} in
  let f = snap.Snapshot.edge_label.{j} in
  match Plan.field ctx.plan sl f with
  | Some fi when not fi.Plan.fi_attr -> acc
  | Some _ ->
    Violation.make Violation.SS4
      (Violation.Edge snap.Snapshot.edge_id.{j})
      (Printf.sprintf "field %s.%s is an attribute definition and justifies no edges"
         (Plan.name ctx.plan sl) (Plan.name ctx.plan f))
    :: acc
  | None ->
    Violation.make Violation.SS4
      (Violation.Edge snap.Snapshot.edge_id.{j})
      (Printf.sprintf "no field %S is declared for type %S" (Plan.name ctx.plan f)
         (Plan.name ctx.plan sl))
    :: acc

(* ------------------------------------------------------------------ *)
(* DS7 (@key): one constraint at a time, grouping nodes globally        *)

(* A collision-free serialization of property values, compatible with
   Value.equal: tagged and length-prefixed (Value.to_string would conflate
   e.g. Id "x" and String "x"), with floats canonicalized by bit pattern
   (+0.0 = -0.0, one representative for nan). *)
let rec add_value_key buf (v : Value.t) =
  match v with
  | Value.Int i ->
    Buffer.add_char buf 'i';
    Buffer.add_string buf (string_of_int i)
  | Value.Float f ->
    Buffer.add_char buf 'f';
    if Float.is_nan f then Buffer.add_string buf "nan"
    else Buffer.add_string buf (Int64.to_string (Int64.bits_of_float (f +. 0.0)))
  | Value.String s ->
    Buffer.add_char buf 's';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  | Value.Bool b ->
    Buffer.add_char buf 'b';
    Buffer.add_char buf (if b then '1' else '0')
  | Value.Id s ->
    Buffer.add_char buf 'd';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  | Value.Enum s ->
    Buffer.add_char buf 'e';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  | Value.List vs ->
    Buffer.add_char buf 'l';
    Buffer.add_string buf (string_of_int (List.length vs));
    Buffer.add_char buf ':';
    List.iter (add_value_key buf) vs

let ds7_scan ctx (key : Plan.key) groups i =
  let snap = ctx.snap in
  if Plan.is_sub ctx.plan snap.Snapshot.node_label.{i} key.Plan.key_owner then begin
    let buf = Buffer.create 32 in
    Array.iter
      (fun fsym ->
        (match Snapshot.find_prop snap.Snapshot.node_props.(i) fsym with
        | None -> Buffer.add_char buf 'A' (* absent *)
        | Some value ->
          Buffer.add_char buf 'P';
          add_value_key buf value);
        Buffer.add_char buf '\x00')
      key.Plan.key_attrs;
    let k = Buffer.contents buf in
    match Hashtbl.find_opt groups k with
    | Some l -> Hashtbl.replace groups k (i :: l)
    | None -> Hashtbl.add groups k [ i ]
  end

(* Phase 1: group the nodes of [lo, hi) into [groups].  A stopped scan
   leaves every group a subset of its full membership, so the emitted
   pairs are a subset of the full report's — partial DS7 results stay
   prefix-consistent.  The sharded engines call this once per shard
   range (each filling its own table), the monolithic ones once over the
   full node range. *)
let ds7_groups ctx (key : Plan.key) (groups : (string, int list) Hashtbl.t) ~lo ~hi =
  let gov = ctx.gov in
  if not (Governor.active gov) then
    for i = lo to hi - 1 do
      ds7_scan ctx key groups i
    done
  else begin
    let i = ref lo in
    let stop = ref false in
    while (not !stop) && !i < hi do
      if Governor.tick gov (!i - lo) then stop := true
      else begin
        ds7_scan ctx key groups !i;
        incr i
      end
    done;
    Governor.note_node_scans gov (!i - lo)
  end

(* Phase 2: emit the pairwise violations of every group of two or more.
   Group member order is irrelevant (pair subjects are normalized and
   the message uses min/max of the pair), so merging per-shard groups by
   concatenation yields the same violation set as one global scan. *)
let ds7_emit ctx (key : Plan.key) (groups : (string, int list) Hashtbl.t) acc =
  let snap = ctx.snap in
  let gov = ctx.gov in
  let acc' =
    Hashtbl.fold
    (fun _key group acc ->
      match group with
      | [] | [ _ ] -> acc
      | _ ->
        pairwise group
          (fun i1 i2 ->
            let a = snap.Snapshot.node_id.{i1} and b = snap.Snapshot.node_id.{i2} in
            Violation.make Violation.DS7
              (Violation.Node_pair (a, b))
              (Printf.sprintf "distinct nodes n%d and n%d of type %s agree on key [%s]"
                 (min a b) (max a b) key.Plan.key_owner_name
                 (String.concat ", " key.Plan.key_fields)))
          acc)
      groups acc
  in
  if Governor.active gov then Governor.note_found gov (Governor.added acc' acc);
  acc'

let ds7 ctx (key : Plan.key) acc =
  let groups : (string, int list) Hashtbl.t = Hashtbl.create 256 in
  ds7_groups ctx key groups ~lo:0 ~hi:ctx.snap.Snapshot.n;
  ds7_emit ctx key groups acc

(* ------------------------------------------------------------------ *)
(* Slice kernels (Indexed runs one slice, Parallel shards them)         *)

(* Ungoverned runs ([Governor.no_run], the default) take the tight
   for-loop — exactly the pre-governor code path, so their reports and
   cost are untouched.  Governed runs checkpoint per element and record
   completed visits and fresh findings; [note] is the scan counter of
   the kernel's universe (nodes or edges). *)
let over_range_noting note body ctx ~lo ~hi acc =
  let gov = ctx.gov in
  if not (Governor.active gov) then begin
    let acc = ref acc in
    for i = lo to hi - 1 do
      acc := body ctx i !acc
    done;
    !acc
  end
  else begin
    let acc = ref acc in
    let i = ref lo in
    let stop = ref false in
    while (not !stop) && !i < hi do
      if Governor.tick gov (!i - lo) then stop := true
      else begin
        let before = !acc in
        acc := body ctx !i before;
        Governor.note_found gov (Governor.added !acc before);
        incr i
      end
    done;
    note gov (!i - lo);
    !acc
  end

let over_nodes body ctx = over_range_noting Governor.note_node_scans body ctx
let over_edges body ctx = over_range_noting Governor.note_edge_scans body ctx

let ws1 ctx = over_nodes ws1_node ctx
let ws2 ctx = over_edges ws2_edge ctx
let ws3 ctx = over_edges ws3_edge ctx
let ws4 ctx = over_nodes ws4_node ctx
let ds1 ctx = over_nodes ds1_node ctx
let ds2 ctx = over_nodes ds2_node ctx
let ds3 ctx = over_nodes ds3_node ctx
let ds4 ctx = over_nodes ds4_node ctx
let ds56 ctx = over_nodes ds56_node ctx
let ss1 ctx = over_nodes ss1_node ctx
let ss2 ctx = over_nodes ss2_node ctx
let ss3 ctx = over_edges ss3_edge ctx
let ss4 ctx = over_edges ss4_edge ctx

(* ------------------------------------------------------------------ *)
(* Fused passes (the Linear engine: everything about one element in one
   visit, sharing the run scans between WS4, DS1 and DS2)               *)

let node_pass ctx rs i acc =
  let acc = if rs.weak then ws1_node ctx i acc else acc in
  let acc =
    if rs.weak || rs.dirs then
      out_rules ~ws4:rs.weak
        ~ds1:(if rs.dirs then Ds1_all else Ds1_none)
        ~ds2:rs.dirs ctx i acc
    else acc
  in
  let acc = if rs.dirs then ds56_node ctx i (ds4_node ctx i (ds3_node ctx i acc)) else acc in
  if rs.strong then ss2_node ctx i (ss1_node ctx i acc) else acc

let edge_pass ctx rs j acc =
  let acc = if rs.weak then ws3_edge ctx j (ws2_edge ctx j acc) else acc in
  if rs.strong then ss4_edge ctx j (ss3_edge ctx j acc) else acc

let ds7_all ctx acc = Array.fold_left (fun acc key -> ds7 ctx key acc) acc (Plan.keys ctx.plan)

(* ------------------------------------------------------------------ *)
(* Shard-local and frontier passes (the sharded engine family)          *)

module Partition = Pg_graph.Partition

(* Everything about node i that needs no other shard's state: WS1, SS1,
   SS2 and DS5/DS6 read only the node's own row and owned out segment;
   WS4 and DS2 read only owned out-edges; DS1 is restricted to the
   (label, target) sub-runs whose target lies inside the shard.  DS3 and
   DS4 read the in segment, so they stay local only when no in-edge
   crosses a shard boundary and defer to the frontier pass otherwise. *)
let local_node_body ctx part rs ~lo ~hi i acc =
  let acc = if rs.weak then ws1_node ctx i acc else acc in
  let acc =
    if rs.weak || rs.dirs then
      out_rules ~ws4:rs.weak
        ~ds1:(if rs.dirs then Ds1_intra (lo, hi) else Ds1_none)
        ~ds2:rs.dirs ctx i acc
    else acc
  in
  let acc =
    if rs.dirs then begin
      let acc =
        if Partition.has_cross_in part i then acc
        else ds4_node ctx i (ds3_node ctx i acc)
      in
      ds56_node ctx i acc
    end
    else acc
  in
  if rs.strong then ss2_node ctx i (ss1_node ctx i acc) else acc

let shard_local ctx part s rs acc =
  let sh = Partition.shard part s in
  let lo = sh.Partition.node_lo and hi = sh.Partition.node_hi in
  let acc =
    over_range_noting Governor.note_node_scans
      (fun ctx i acc -> local_node_body ctx part rs ~lo ~hi i acc)
      ctx ~lo ~hi acc
  in
  if not (rs.weak || rs.strong) then acc
  else begin
    (* owned intra edges, iterated through the shard's rebased CSR slice
       (the sub-view aliases the snapshot's storage — zero copies) *)
    let adj = sh.Partition.out_adj in
    let snap = ctx.snap in
    over_range_noting Governor.note_edge_scans
      (fun ctx k acc ->
        let e = adj.{k} in
        let t = snap.Snapshot.edge_tgt.{e} in
        if t >= lo && t < hi then edge_pass ctx rs e acc else acc)
      ctx ~lo:0 ~hi:(Bigarray.Array1.dim adj) acc
  end

(* The cross-shard complement: DS1 sub-runs with remote targets, DS3/DS4
   for nodes with at least one cross-shard in-edge, and the per-edge
   rules on the frontier edges themselves.  Together with [shard_local]
   every rule instance is computed exactly once, so the merged report
   equals the monolithic engines' after {!Violation.normalize}. *)
let frontier ctx part rs acc =
  let acc =
    if rs.dirs then begin
      let fo = Partition.frontier_out_nodes part in
      let acc =
        over_range_noting Governor.note_node_scans
          (fun ctx x acc ->
            let i = fo.(x) in
            let lo, hi = Partition.bounds_of_node part i in
            out_rules ~ws4:false ~ds1:(Ds1_cross (lo, hi)) ~ds2:false ctx i acc)
          ctx ~lo:0 ~hi:(Array.length fo) acc
      in
      let fi = Partition.frontier_in_nodes part in
      over_range_noting Governor.note_node_scans
        (fun ctx x acc ->
          let i = fi.(x) in
          ds4_node ctx i (ds3_node ctx i acc))
        ctx ~lo:0 ~hi:(Array.length fi) acc
    end
    else acc
  in
  if not (rs.weak || rs.strong) then acc
  else begin
    let fe = Partition.frontier_edges part in
    over_range_noting Governor.note_edge_scans
      (fun ctx x acc -> edge_pass ctx rs fe.(x) acc)
      ctx ~lo:0 ~hi:(Array.length fe) acc
  end
