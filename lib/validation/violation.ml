type rule =
  | WS1
  | WS2
  | WS3
  | WS4
  | DS1
  | DS2
  | DS3
  | DS4
  | DS5
  | DS6
  | DS7
  | SS1
  | SS2
  | SS3
  | SS4

let rule_name = function
  | WS1 -> "WS1"
  | WS2 -> "WS2"
  | WS3 -> "WS3"
  | WS4 -> "WS4"
  | DS1 -> "DS1"
  | DS2 -> "DS2"
  | DS3 -> "DS3"
  | DS4 -> "DS4"
  | DS5 -> "DS5"
  | DS6 -> "DS6"
  | DS7 -> "DS7"
  | SS1 -> "SS1"
  | SS2 -> "SS2"
  | SS3 -> "SS3"
  | SS4 -> "SS4"

let rule_description = function
  | WS1 -> "node properties must be of the required type"
  | WS2 -> "edge properties must be of the required type"
  | WS3 -> "target nodes must be of the required type"
  | WS4 -> "non-list fields contain at most one edge"
  | DS1 -> "edges identified by nodes and label (@distinct)"
  | DS2 -> "no loops (@noLoops)"
  | DS3 -> "target has at most one incoming edge (@uniqueForTarget)"
  | DS4 -> "target has at least one incoming edge (@requiredForTarget)"
  | DS5 -> "property is required (@required)"
  | DS6 -> "edge is required (@required)"
  | DS7 -> "keys (@key)"
  | SS1 -> "all nodes are justified"
  | SS2 -> "all node properties are justified"
  | SS3 -> "all edge properties are justified"
  | SS4 -> "all edges are justified"

let all_rules =
  [ WS1; WS2; WS3; WS4; DS1; DS2; DS3; DS4; DS5; DS6; DS7; SS1; SS2; SS3; SS4 ]

let rule_rank = function
  | WS1 -> 0
  | WS2 -> 1
  | WS3 -> 2
  | WS4 -> 3
  | DS1 -> 4
  | DS2 -> 5
  | DS3 -> 6
  | DS4 -> 7
  | DS5 -> 8
  | DS6 -> 9
  | DS7 -> 10
  | SS1 -> 11
  | SS2 -> 12
  | SS3 -> 13
  | SS4 -> 14

type subject =
  | Node of int
  | Edge of int
  | Node_property of int * string
  | Edge_property of int * string
  | Node_pair of int * int
  | Edge_pair of int * int

type t = { rule : rule; subject : subject; message : string }

let normalize_subject = function
  | Node_pair (a, b) when a > b -> Node_pair (b, a)
  | Edge_pair (a, b) when a > b -> Edge_pair (b, a)
  | s -> s

let make rule subject message = { rule; subject = normalize_subject subject; message }

let compare v1 v2 =
  match Stdlib.compare (rule_rank v1.rule) (rule_rank v2.rule) with
  | 0 -> Stdlib.compare v1.subject v2.subject
  | c -> c

let equal v1 v2 = compare v1 v2 = 0

(* Normalization must be independent of the order violations were
   accumulated in — the parallel engine merges per-shard lists in a
   nondeterministic order.  [compare] ignores messages, so when the same
   (rule, subject) is reported with different messages (e.g. one field
   @required by two owners), break the tie on the message text and keep
   the least: the survivor is then a function of the violation *set*, not
   of engine scheduling. *)
let compare_with_message v1 v2 =
  match compare v1 v2 with
  | 0 -> String.compare v1.message v2.message
  | c -> c

let normalize vs =
  let sorted = List.sort compare_with_message vs in
  let rec dedup acc = function
    | [] -> List.rev acc
    | [ v ] -> List.rev (v :: acc)
    | v1 :: v2 :: rest ->
      if equal v1 v2 then dedup acc (v1 :: rest) else dedup (v1 :: acc) (v2 :: rest)
  in
  dedup [] sorted

let pp_subject ppf = function
  | Node v -> Format.fprintf ppf "node n%d" v
  | Edge e -> Format.fprintf ppf "edge e%d" e
  | Node_property (v, p) -> Format.fprintf ppf "property %S of node n%d" p v
  | Edge_property (e, p) -> Format.fprintf ppf "property %S of edge e%d" p e
  | Node_pair (a, b) -> Format.fprintf ppf "nodes n%d and n%d" a b
  | Edge_pair (a, b) -> Format.fprintf ppf "edges e%d and e%d" a b

let subject_to_string s = Format.asprintf "%a" pp_subject s

let pp ppf v =
  Format.fprintf ppf "[%s] %a: %s (%s)" (rule_name v.rule) pp_subject v.subject v.message
    (rule_description v.rule)

let to_string v = Format.asprintf "%a" pp v

(* The rule names WS1..SS4 double as the stable diagnostic codes; the
   registry's descriptions are the paper captions above, so the unified
   text renderer reproduces [pp] byte-for-byte. *)
let to_diagnostic v =
  Pg_diag.Diag.error ~code:(rule_name v.rule) ~subject:(subject_to_string v.subject) v.message
