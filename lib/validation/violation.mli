(** Typed validation diagnostics.

    Each violation names the rule of Section 5 it falsifies (WS1–WS4 of
    weak satisfaction, DS1–DS7 of directives satisfaction, SS1–SS4 of
    strong satisfaction), the graph elements involved, and a rendered
    message.  Violations are totally ordered so that the two validation
    engines can be compared for extensional equality. *)

type rule =
  | WS1  (** node properties must be of the required type *)
  | WS2  (** edge properties must be of the required type *)
  | WS3  (** target nodes must be of the required type *)
  | WS4  (** non-list fields contain at most one edge *)
  | DS1  (** [@distinct]: edges identified by nodes and label *)
  | DS2  (** [@noLoops]: no loops *)
  | DS3  (** [@uniqueForTarget]: target has at most one incoming edge *)
  | DS4  (** [@requiredForTarget]: target has at least one incoming edge *)
  | DS5  (** [@required] on an attribute: property is required *)
  | DS6  (** [@required] on a relationship: edge is required *)
  | DS7  (** [@key]: keys *)
  | SS1  (** all nodes are justified *)
  | SS2  (** all node properties are justified *)
  | SS3  (** all edge properties are justified *)
  | SS4  (** all edges are justified *)

val rule_name : rule -> string
(** "WS1" ... "SS4". *)

val rule_description : rule -> string
(** The paper's caption for the rule. *)

val all_rules : rule list

(** The graph elements a violation is about.  Pairs are kept in normalized
    (sorted) order so that engines reporting [(a, b)] and [(b, a)] agree. *)
type subject =
  | Node of int
  | Edge of int
  | Node_property of int * string
  | Edge_property of int * string
  | Node_pair of int * int
  | Edge_pair of int * int

type t = { rule : rule; subject : subject; message : string }

val make : rule -> subject -> string -> t
(** Normalizes pair subjects. *)

val compare : t -> t -> int
(** Ignores the message: two violations are the same fact about the same
    elements. *)

val equal : t -> t -> bool

val compare_with_message : t -> t -> int
(** {!compare}, breaking ties on the message text — the order
    {!normalize} sorts by.  Inserting candidates in this order into a
    {!compare}-keyed set keeps the same survivor normalize would. *)

val normalize : t list -> t list
(** Sort and deduplicate (by rule and subject), keeping the least message
    of each duplicate group — a function of the violation set, not of
    accumulation order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val subject_to_string : subject -> string
(** e.g. ["node n3"], ["property \"age\" of node n1"]. *)

val to_diagnostic : t -> Pg_diag.Diag.t
(** The rule name (["WS1"] ... ["SS4"]) is the stable code; the subject
    is rendered with {!subject_to_string}; severity is error. *)
