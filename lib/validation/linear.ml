(* The fused single-pass engine: one visit per node and per edge of the
   frozen snapshot, evaluating everything the rule set says about that
   element ({!Kernels.node_pass}/{!Kernels.edge_pass}), then the global
   DS7 key grouping.  Same per-element rule bodies as {!Indexed} and
   {!Parallel}, so reports are byte-identical after normalization; the
   fused shape trades their per-rule slicing for locality (each element's
   properties and CSR segments are scanned while hot in cache). *)

module K = Kernels
module Snapshot = Pg_graph.Snapshot

let check (ctx : K.ctx) (rs : K.rule_set) =
  let n = ctx.K.snap.Snapshot.n and m = ctx.K.snap.Snapshot.m in
  let gov = ctx.K.gov in
  let acc = ref [] in
  if not (Governor.active gov) then begin
    for i = 0 to n - 1 do
      acc := K.node_pass ctx rs i !acc
    done;
    for j = 0 to m - 1 do
      acc := K.edge_pass ctx rs j !acc
    done
  end
  else begin
    (* Same passes with per-element budget checkpoints.  The fused shape
       visits each element exactly once, so the noted scans are element
       counts, not rule × element work units. *)
    let governed len pass =
      let i = ref 0 in
      let stop = ref false in
      while (not !stop) && !i < len do
        if Governor.tick gov !i then stop := true
        else begin
          let before = !acc in
          acc := pass !i before;
          Governor.note_found gov (Governor.added !acc before);
          incr i
        end
      done;
      !i
    in
    Governor.note_node_scans gov (governed n (fun i acc -> K.node_pass ctx rs i acc));
    Governor.note_edge_scans gov (governed m (fun j acc -> K.edge_pass ctx rs j acc))
  end;
  (* ds7_all checkpoints internally through the ctx governor. *)
  let acc = if rs.K.dirs then K.ds7_all ctx !acc else !acc in
  Violation.normalize acc
