(* The fused single-pass engine: one visit per node and per edge of the
   frozen snapshot, evaluating everything the rule set says about that
   element ({!Kernels.node_pass}/{!Kernels.edge_pass}), then the global
   DS7 key grouping.  Same per-element rule bodies as {!Indexed} and
   {!Parallel}, so reports are byte-identical after normalization; the
   fused shape trades their per-rule slicing for locality (each element's
   properties and CSR segments are scanned while hot in cache). *)

module K = Kernels
module Snapshot = Pg_graph.Snapshot

let check (ctx : K.ctx) (rs : K.rule_set) =
  let n = ctx.K.snap.Snapshot.n and m = ctx.K.snap.Snapshot.m in
  let acc = ref [] in
  for i = 0 to n - 1 do
    acc := K.node_pass ctx rs i !acc
  done;
  for j = 0 to m - 1 do
    acc := K.edge_pass ctx rs j !acc
  done;
  let acc = if rs.K.dirs then K.ds7_all ctx !acc else !acc in
  Violation.normalize acc
