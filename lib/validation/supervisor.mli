(** Supervised job execution: the exception firewall and retry policy
    behind [gpgs batch].

    A production validation service runs many jobs against one compiled
    plan; one crashing engine ([Out_of_memory], [Stack_overflow], a bug)
    must cost one job, not the process.  {!supervise} runs a thunk under
    a catch-all firewall, retries {e transient} failures under a bounded
    deterministic backoff policy, and converts a final failure into a
    {!crash} — which {!crash_diagnostic} renders as the stable [VAL002]
    code.  Per-job deadlines reuse {!Governor} budgets: pass a budgeted
    [gov] to the validation call inside the thunk and a slow job comes
    back as a partial {e result}, while a crashing job comes back as a
    {!crash} — the two failure modes stay distinct in the batch report.

    Determinism: the backoff schedule is a pure function of the policy
    ([backoff_ms ·​ multiplier{^ attempt-1}]); the actual waiting is
    delegated to an injectable [sleep] so tests record delays instead of
    sleeping. *)

(** {1 Retry policy} *)

type policy = {
  retries : int;  (** additional attempts after the first *)
  backoff_ms : float;  (** delay before the first retry *)
  multiplier : float;  (** delay growth factor per retry *)
}

val default_policy : policy
(** No retries ([retries = 0]); 100 ms base, doubling. *)

val policy : ?retries:int -> ?backoff_ms:float -> ?multiplier:float -> unit -> policy
(** @raise Invalid_argument on a negative [retries] or non-positive
    [backoff_ms]/[multiplier]. *)

val backoff_delays : policy -> float list
(** The full deterministic schedule, in milliseconds:
    [[backoff_ms; backoff_ms ·​ multiplier; ...]], one per retry. *)

(** {1 Supervision} *)

type crash = {
  crash_exn : string;  (** [Printexc.to_string] of the final exception *)
  crash_attempts : int;  (** attempts made, including the first *)
  crash_transient : bool;  (** whether the final failure was transient *)
}

type 'a outcome =
  | Done of 'a * int  (** result and the number of attempts it took *)
  | Crashed of crash

val default_transient : exn -> bool
(** Only the failures a retry can plausibly cure: [Unix.Unix_error] with
    a genuinely transient errno ([EINTR], [EAGAIN]/[EWOULDBLOCK],
    [ECONNRESET], [ETIMEDOUT]), and the [Sys_error]s carrying the same
    conditions as strerror text.  Deterministic errnos ([ENOENT],
    [EACCES], ...) fail fast — retrying them multiplies the latency of
    an error that will never go away.  Engine exceptions,
    [Out_of_memory] and [Stack_overflow] are likewise never retried by
    default. *)

val supervise :
  ?policy:policy ->
  ?transient:(exn -> bool) ->
  ?sleep:(float -> unit) ->
  (unit -> 'a) ->
  'a outcome
(** Run the thunk under the firewall.  Every exception is caught
    (including [Out_of_memory] and [Stack_overflow]); transient ones are
    retried up to [policy.retries] times, sleeping the deterministic
    backoff delay (in ms) before each retry.  [sleep] defaults to a real
    [Unix.sleepf]; tests inject a recorder.  Note that a per-attempt
    {!Governor} deadline inside the thunk restarts on retry. *)

val crash_diagnostic : subject:string -> crash -> Pg_diag.Diag.t
(** The crash as a [VAL002] diagnostic; the message is self-contained
    (it names the subject, the attempt count, and the exception). *)

(** {1 Batch reports} *)

type status =
  | Completed  (** ingested fully, validated fully *)
  | Partial  (** finished, but ingestion or validation was cut short *)
  | Crashed_job  (** the firewall caught a crash (VAL002) *)
  | Unreadable  (** the input could not be loaded at all (IO001) *)

val status_name : status -> string
(** ["completed"], ["partial"], ["crashed"], ["unreadable"]. *)

type job_report = {
  job : string;  (** the input path (or other job identifier) *)
  job_status : status;
  attempts : int;  (** 0 when the job never ran (unreadable input) *)
  diags : Pg_diag.Diag.t list;  (** everything the job produced *)
}

type batch = {
  jobs : job_report list;  (** in submission order *)
  completed : int;
  partial : int;
  crashed : int;
  unreadable : int;
}

val make_batch : job_report list -> batch

val batch_diagnostics : batch -> Pg_diag.Diag.t list
(** All job diagnostics, concatenated in job order — the list
    [Pg_diag.Diag.Exit.classify] composes the batch exit code from. *)

val pp_batch : Format.formatter -> batch -> unit
(** One summary line: ["7 job(s): 5 completed, 1 partial, 1 crashed"]. *)
