(* The sequential production engine: the {!Kernels} rule kernels applied
   to one slice covering the whole snapshot.  {!Parallel} runs the same
   kernels sharded across domains; both merge through
   {!Violation.normalize}, which is what makes their reports identical. *)

module K = Kernels

let nodes_len (ctx : K.ctx) = Array.length ctx.K.nodes
let edges_len (ctx : K.ctx) = Array.length ctx.K.edges

let weak ?env sch g =
  let ctx = K.make_ctx ?env sch g in
  let cache = K.make_cache () in
  []
  |> K.ws1 ctx ~lo:0 ~hi:(nodes_len ctx)
  |> K.ws2 ctx ~lo:0 ~hi:(edges_len ctx)
  |> K.ws3 ctx cache ~lo:0 ~hi:(edges_len ctx)
  |> K.ws4 ctx ~lo:0 ~hi:(Array.length ctx.K.idx.K.out_groups)
  |> Violation.normalize

let directives ?env sch g =
  let ctx = K.make_ctx ?env sch g in
  let cache = K.make_cache () in
  let par_len = Array.length ctx.K.idx.K.par_groups in
  []
  |> K.ds1 ctx cache ~lo:0 ~hi:par_len
  |> K.ds2 ctx cache ~lo:0 ~hi:par_len
  |> K.ds3 ctx cache ~lo:0 ~hi:(Array.length ctx.K.idx.K.in_groups)
  |> K.ds4 ctx cache ~lo:0 ~hi:(nodes_len ctx)
  |> K.ds56 ctx cache ~lo:0 ~hi:(nodes_len ctx)
  |> (fun acc ->
       List.fold_left (fun acc kc -> K.ds7 ctx cache kc acc) acc ctx.K.keys)
  |> Violation.normalize

let strong_extra = Linear.strong_extra
