(* The sequential per-rule engine: each {!Kernels} slice kernel applied
   once over its full universe (the snapshot's node or edge range).
   {!Parallel} runs the same kernels sharded across domains and {!Linear}
   fuses the same rule bodies into one pass; all merge through
   {!Violation.normalize}, which is what makes their reports identical. *)

module K = Kernels
module Snapshot = Pg_graph.Snapshot

let check (ctx : K.ctx) (rs : K.rule_set) =
  let n = ctx.K.snap.Snapshot.n and m = ctx.K.snap.Snapshot.m in
  let nodes k acc = k ctx ~lo:0 ~hi:n acc in
  let edges k acc = k ctx ~lo:0 ~hi:m acc in
  let acc = [] in
  let acc =
    if rs.K.weak then acc |> nodes K.ws1 |> edges K.ws2 |> edges K.ws3 |> nodes K.ws4
    else acc
  in
  let acc =
    if rs.K.dirs then
      acc |> nodes K.ds1 |> nodes K.ds2 |> nodes K.ds3 |> nodes K.ds4 |> nodes K.ds56
      |> K.ds7_all ctx
    else acc
  in
  let acc =
    if rs.K.strong then acc |> nodes K.ss1 |> nodes K.ss2 |> edges K.ss3 |> edges K.ss4
    else acc
  in
  Violation.normalize acc
