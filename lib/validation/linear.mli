(** The fused single-pass validation engine.

    One visit per node and one per edge of the frozen snapshot, evaluating
    every selected rule on the element in that visit ({!Kernels.node_pass}
    and {!Kernels.edge_pass}), followed by the global DS7 key grouping.
    Shares its per-element rule bodies with {!Indexed} and {!Parallel},
    so after {!Violation.normalize} all three report byte-identically;
    the fused shape maximizes locality instead of slicing per rule. *)

val check : Kernels.ctx -> Kernels.rule_set -> Violation.t list
(** Violations of the selected rule families, normalized. *)
