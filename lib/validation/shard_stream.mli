(** The streaming shard pipeline: build, validate and drop one
    {!Pg_graph.Partition} shard of a {!Pg_graph.Snapshot_io.mapped}
    snapshot at a time.

    The mapped snapshot's int columns are available from the start (the
    OS pages the mmap on demand); property vectors are read per shard
    through the version-2 offset indexes and dropped before the next
    shard is touched, so peak heap is bounded by the largest shard plus
    the cross-shard frontier instead of the whole property set.  The
    report is byte-identical to every in-memory engine's. *)

val check :
  ?env:Pg_schema.Values_w.env ->
  ?gov:Governor.run ->
  shards:int ->
  Pg_schema.Plan.t ->
  Pg_graph.Snapshot_io.mapped ->
  Kernels.rule_set ->
  (Violation.t list, Pg_graph.Snapshot_io.error) result
(** Sequential over the shards; errors are the I/O layer's (a failed
    property read).  A governed stop between shards returns the partial
    prefix.  [gov] defaults to {!Governor.no_run}.
    @raise Invalid_argument if [shards < 1]. *)
