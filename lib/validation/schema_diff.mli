(** Schema evolution: diff two schemas and classify every change by its
    effect on instance validity.

    A change is {e compatible} when every Property Graph that strongly
    satisfies the old schema also strongly satisfies the new one — the
    migration needs no data changes; it is {e breaking} when some
    conforming graph stops conforming.  The classification is
    conservative: anything not provably compatible is reported as
    breaking, with the rule of Section 5 that could fire.

    Examples of the classification logic:
    - adding an object type, an optional field, an enum value, a union
      member, or an argument only widens what is justified → compatible;
    - removing any of those orphans existing data (SS1/SS2/SS3/SS4) →
      breaking;
    - adding [@required], [@key], [@distinct], [@noLoops],
      [@uniqueForTarget] or [@requiredForTarget] tightens constraints →
      breaking; removing them → compatible;
    - changing a field's type is compatible only for specific widenings:
      wrapping a relationship type into a list relaxes WS4; adding
      non-null never affects stored values (σ is partial); growing the
      target type upward (e.g. an object type to a union containing it)
      relaxes WS3. *)

type severity =
  | Compatible  (** every old-conformant graph stays conformant *)
  | Breaking  (** some old-conformant graph becomes invalid *)

type change = {
  severity : severity;
  subject : string;  (** e.g. "type User", "field User.login", "enum Color" *)
  description : string;
  rule : Violation.rule option;
      (** for breaking changes: a rule that could fire on existing data *)
}

val diff : Pg_schema.Schema.t -> Pg_schema.Schema.t -> change list
(** [diff old_schema new_schema], in deterministic order. *)

val breaking : change list -> change list
val is_compatible : Pg_schema.Schema.t -> Pg_schema.Schema.t -> bool

val pp_change : Format.formatter -> change -> unit

val to_diagnostic : change -> Pg_diag.Diag.t
(** Breaking changes are [DIFF001] errors, compatible ones [DIFF002]
    infos; the rule that could fire is folded into the message exactly as
    {!pp_change} prints it. *)
