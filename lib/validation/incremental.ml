module G = Pg_graph.Property_graph
module Value = Pg_graph.Value
module Plan = Pg_schema.Plan
module Values_w = Pg_schema.Values_w
module ISet = Set.Make (Int)

module VSet = Set.Make (struct
  type t = Violation.t

  let compare = Violation.compare
end)

type region = { rnodes : ISet.t; redges : ISet.t }

let empty_region = { rnodes = ISet.empty; redges = ISet.empty }
let with_node r v = { r with rnodes = ISet.add (G.node_id v) r.rnodes }
let with_edge r e = { r with redges = ISet.add (G.edge_id e) r.redges }

let involves region (v : Violation.t) =
  match v.Violation.subject with
  | Violation.Node id | Violation.Node_property (id, _) -> ISet.mem id region.rnodes
  | Violation.Edge id | Violation.Edge_property (id, _) -> ISet.mem id region.redges
  | Violation.Node_pair (a, b) -> ISet.mem a region.rnodes || ISet.mem b region.rnodes
  | Violation.Edge_pair (a, b) -> ISet.mem a region.redges || ISet.mem b region.redges

type t = {
  plan : Plan.t;  (* compiled once in {!create}, reused by every update *)
  env : Values_w.env;
  g : G.t;
  vset : VSet.t;
  complete : bool;  (* was the initial batch validation complete? *)
}

let graph t = t.g
let schema t = Plan.schema t.plan
let violations t = VSet.elements t.vset
let is_valid t = VSet.is_empty t.vset && t.complete
let complete t = t.complete

(* ------------------------------------------------------------------ *)
(* Local revalidation: the fifteen rules restricted to a region.

   Updates run on the mutable graph, not a snapshot, so labels and names
   resolve through [Plan.find] — read-only: a label the plan has never
   seen is simply not a schema type (no field declarations, subtype of
   nothing), which is exactly the string-level semantics. *)

(* The symbol of a graph label, if the plan knows the name at all. *)
let sym t lbl = Plan.find t.plan lbl

let label_sub t lbl usym =
  match sym t lbl with Some l -> Plan.is_sub t.plan l usym | None -> false

let field_of t lsym fname =
  match lsym with Some l -> Plan.field_named t.plan l fname | None -> None

let node_violations t v acc =
  let g = t.g in
  let label = G.node_label g v in
  let vid = G.node_id v in
  let lsym = sym t label in
  (* SS1 *)
  let acc =
    if match lsym with Some l -> Plan.is_object t.plan l | None -> false then acc
    else
      Violation.make Violation.SS1 (Violation.Node vid)
        (Printf.sprintf "label %S is not an object type of the schema" label)
      :: acc
  in
  (* WS1 + SS2 over the node's properties; open types are SS2-exempt
     (same skip as [Kernels.ss2_node] and the naive spec) *)
  let ss2_exempt = match lsym with Some l -> Plan.is_open t.plan l | None -> false in
  let acc =
    List.fold_left
      (fun acc (p, value) ->
        match field_of t lsym p with
        | Some fi when fi.Plan.fi_attr ->
          if fi.Plan.fi_mem t.env value then acc
          else
            Violation.make Violation.WS1
              (Violation.Node_property (vid, p))
              (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                 fi.Plan.fi_type_str)
            :: acc
        | Some _ ->
          if ss2_exempt then acc
          else
            Violation.make Violation.SS2
              (Violation.Node_property (vid, p))
              (Printf.sprintf "field %s.%s is a relationship definition, not an attribute" label
                 p)
            :: acc
        | None ->
          if ss2_exempt then acc
          else
            Violation.make Violation.SS2
              (Violation.Node_property (vid, p))
              (Printf.sprintf "no field %S is declared for type %S" p label)
            :: acc)
      acc (G.node_props g v)
  in
  (* DS5 / DS6: the plan's per-label row already encodes label ⊑ owner *)
  let acc =
    match lsym with
    | None -> acc
    | Some l ->
      Array.fold_left
        (fun acc (fc : Plan.field_constraint) ->
          if fc.Plan.fc_info.Plan.fi_attr then begin
            match G.node_prop g v fc.Plan.fc_field_name with
            | None ->
              Violation.make Violation.DS5
                (Violation.Node_property (vid, fc.Plan.fc_field_name))
                (Printf.sprintf "node n%d lacks the property %S required on %s.%s" vid
                   fc.Plan.fc_field_name fc.Plan.fc_owner_name fc.Plan.fc_field_name)
              :: acc
            | Some value ->
              if fc.Plan.fc_info.Plan.fi_list then begin
                match value with
                | Value.List (_ :: _) -> acc
                | _ ->
                  Violation.make Violation.DS5
                    (Violation.Node_property (vid, fc.Plan.fc_field_name))
                    (Printf.sprintf
                       "property %S of node n%d must be a nonempty list (required list attribute)"
                       fc.Plan.fc_field_name vid)
                  :: acc
              end
              else acc
          end
          else if
            List.exists
              (fun e -> String.equal (G.edge_label g e) fc.Plan.fc_field_name)
              (G.out_edges g v)
          then acc
          else
            Violation.make Violation.DS6 (Violation.Node vid)
              (Printf.sprintf "node n%d lacks the outgoing %S edge required on %s.%s" vid
                 fc.Plan.fc_field_name fc.Plan.fc_owner_name fc.Plan.fc_field_name)
            :: acc)
        acc (Plan.required_at t.plan l)
  in
  (* DS4: the row encodes label ⊑ basetype(typeS(t, f)) *)
  let acc =
    match lsym with
    | None -> acc
    | Some l ->
      Array.fold_left
        (fun acc (fc : Plan.field_constraint) ->
          if
            List.exists
              (fun e ->
                String.equal (G.edge_label g e) fc.Plan.fc_field_name
                &&
                let src, _ = G.edge_ends g e in
                label_sub t (G.node_label g src) fc.Plan.fc_owner)
              (G.in_edges g v)
          then acc
          else
            Violation.make Violation.DS4 (Violation.Node vid)
              (Printf.sprintf
                 "node n%d (%S) has no incoming %S edge required by @requiredForTarget on %s.%s"
                 vid label fc.Plan.fc_field_name fc.Plan.fc_owner_name
                 fc.Plan.fc_field_name)
            :: acc)
        acc (Plan.required_tgt_at t.plan l)
  in
  (* DS7: pairs between v and every other node of the keyed type *)
  Array.fold_left
    (fun acc (key : Plan.key) ->
      if not (match lsym with Some l -> Plan.is_sub t.plan l key.Plan.key_owner | None -> false)
      then acc
      else begin
        let agree u f =
          match G.node_prop g v f, G.node_prop g u f with
          | None, None -> true
          | Some x, Some y -> Value.equal x y
          | Some _, None | None, Some _ -> false
        in
        List.fold_left
          (fun acc u ->
            if
              G.node_id u <> vid
              && label_sub t (G.node_label g u) key.Plan.key_owner
              && Array.for_all (agree u) key.Plan.key_attr_names
            then
              Violation.make Violation.DS7
                (Violation.Node_pair (vid, G.node_id u))
                (Printf.sprintf "distinct nodes n%d and n%d of type %s agree on key [%s]"
                   (min vid (G.node_id u))
                   (max vid (G.node_id u))
                   key.Plan.key_owner_name
                   (String.concat ", " key.Plan.key_fields))
              :: acc
            else acc)
          acc (G.nodes g)
      end)
    acc (Plan.keys t.plan)

let edge_violations t e acc =
  let g = t.g in
  let eid = G.edge_id e in
  let v1, v2 = G.edge_ends g e in
  let src_label = G.node_label g v1 in
  let slsym = sym t src_label in
  let f = G.edge_label g e in
  let field = field_of t slsym f in
  (* WS2 + SS3 over the edge's properties *)
  let acc =
    List.fold_left
      (fun acc (a, value) ->
        match
          match field with Some fi -> Plan.arg_named t.plan fi a | None -> None
        with
        | Some ai ->
          if ai.Plan.ai_mem t.env value then acc
          else
            Violation.make Violation.WS2
              (Violation.Edge_property (eid, a))
              (Printf.sprintf "value %s is not in valuesW(%s)" (Value.to_string value)
                 ai.Plan.ai_type_str)
            :: acc
        | None ->
          Violation.make Violation.SS3
            (Violation.Edge_property (eid, a))
            (Printf.sprintf "no argument %S is declared for field %s.%s" a src_label f)
          :: acc)
      acc (G.edge_props g e)
  in
  (* WS3 + SS4 *)
  let ws3 fi acc =
    if label_sub t (G.node_label g v2) fi.Plan.fi_base then acc
    else
      Violation.make Violation.WS3 (Violation.Edge eid)
        (Printf.sprintf "target node n%d has label %S, which is not a subtype of %S"
           (G.node_id v2) (G.node_label g v2)
           (Plan.name t.plan fi.Plan.fi_base))
        :: acc
  in
  let acc =
    match field with
    | Some fi when not fi.Plan.fi_attr -> ws3 fi acc
    | Some fi ->
      (* attribute-typed field: WS3 applies (label is never ⊑ a scalar) and
         SS4 reports the unjustified edge *)
      ws3 fi
        (Violation.make Violation.SS4 (Violation.Edge eid)
           (Printf.sprintf "field %s.%s is an attribute definition and justifies no edges"
              src_label f)
        :: acc)
    | None ->
      Violation.make Violation.SS4 (Violation.Edge eid)
        (Printf.sprintf "no field %S is declared for type %S" f src_label)
      :: acc
  in
  (* WS4: pairs with sibling edges *)
  let acc =
    match field with
    | Some fi when not fi.Plan.fi_list ->
      List.fold_left
        (fun acc e' ->
          if G.edge_id e' <> eid && String.equal (G.edge_label g e') f then
            Violation.make Violation.WS4
              (Violation.Edge_pair (eid, G.edge_id e'))
              (Printf.sprintf
                 "node n%d has two %S edges but the field type %s is not a list type"
                 (G.node_id v1) f fi.Plan.fi_type_str)
            :: acc
          else acc)
        acc (G.out_edges g v1)
    | Some _ | None -> acc
  in
  (* DS1: parallel duplicates (the per-label row encodes src ⊑ owner) *)
  let acc =
    match slsym with
    | None -> acc
    | Some l ->
      Array.fold_left
        (fun acc (fc : Plan.field_constraint) ->
          if String.equal fc.Plan.fc_field_name f then
            List.fold_left
              (fun acc e' ->
                let _, v2' = G.edge_ends g e' in
                if
                  G.edge_id e' <> eid
                  && String.equal (G.edge_label g e') f
                  && G.node_id v2' = G.node_id v2
                then
                  Violation.make Violation.DS1
                    (Violation.Edge_pair (eid, G.edge_id e'))
                    (Printf.sprintf
                       "parallel %S edges between n%d and n%d violate @distinct on %s.%s" f
                       (G.node_id v1) (G.node_id v2) fc.Plan.fc_owner_name
                       fc.Plan.fc_field_name)
                  :: acc
                else acc)
              acc (G.out_edges g v1)
          else acc)
        acc (Plan.distinct_at t.plan l)
  in
  (* DS2: loops *)
  let acc =
    if G.node_id v1 <> G.node_id v2 then acc
    else begin
      match slsym with
      | None -> acc
      | Some l ->
        Array.fold_left
          (fun acc (fc : Plan.field_constraint) ->
            if String.equal fc.Plan.fc_field_name f then
              Violation.make Violation.DS2 (Violation.Edge eid)
                (Printf.sprintf "loop on node n%d violates @noLoops on %s.%s" (G.node_id v1)
                   fc.Plan.fc_owner_name fc.Plan.fc_field_name)
              :: acc
            else acc)
          acc (Plan.no_loops_at t.plan l)
    end
  in
  (* DS3: pairs among incoming edges of the target *)
  Array.fold_left
    (fun acc (fc : Plan.field_constraint) ->
      if String.equal fc.Plan.fc_field_name f && label_sub t src_label fc.Plan.fc_owner
      then
        List.fold_left
          (fun acc e' ->
            let s', _ = G.edge_ends g e' in
            if
              G.edge_id e' <> eid
              && String.equal (G.edge_label g e') f
              && label_sub t (G.node_label g s') fc.Plan.fc_owner
            then
              Violation.make Violation.DS3
                (Violation.Edge_pair (eid, G.edge_id e'))
                (Printf.sprintf
                   "node n%d has two incoming %S edges, violating @uniqueForTarget on %s.%s"
                   (G.node_id v2) f fc.Plan.fc_owner_name fc.Plan.fc_field_name)
              :: acc
            else acc)
          acc (G.in_edges g v2)
      else acc)
    acc (Plan.unique_tgt t.plan)

let local_violations t region =
  let acc =
    ISet.fold
      (fun id acc ->
        match G.node_of_id t.g id with Some v -> node_violations t v acc | None -> acc)
      region.rnodes []
  in
  ISet.fold
    (fun id acc ->
      match G.edge_of_id t.g id with Some e -> edge_violations t e acc | None -> acc)
    region.redges acc

(* Replace the region's violations with freshly computed ones.  Fresh
   candidates are inserted in [compare_with_message] order so the set —
   keyed on (rule, subject) only — keeps the least message of each
   duplicate group, exactly like [Violation.normalize]: the maintained
   report stays byte-identical to a batch engine's. *)
let refresh t region =
  let kept = VSet.filter (fun v -> not (involves region v)) t.vset in
  let fresh = List.sort Violation.compare_with_message (local_violations t region) in
  { t with vset = List.fold_left (fun s v -> VSet.add v s) kept fresh }

(* ------------------------------------------------------------------ *)

let create ?env ?(gov = Governor.unlimited) sch g =
  let plan = Plan.compile sch in
  let report = Validate.check_compiled ~engine:Validate.Indexed ?env ~gov plan g in
  {
    plan;
    env = Option.value env ~default:Values_w.default_env;
    g;
    vset = VSet.of_list report.Validate.violations;
    complete = report.Validate.complete;
  }

let add_node t ~label ?props () =
  let g, v = G.add_node t.g ~label ?props () in
  let t = { t with g } in
  (refresh t (with_node empty_region v), v)

let add_edge t ~label ?props v1 v2 =
  let g, e = G.add_edge t.g ~label ?props v1 v2 in
  let t = { t with g } in
  let region = with_edge (with_node (with_node empty_region v1) v2) e in
  (refresh t region, e)

let remove_edge t e =
  if not (G.mem_edge t.g e) then t
  else begin
    let v1, v2 = G.edge_ends t.g e in
    let region = with_edge (with_node (with_node empty_region v1) v2) e in
    refresh { t with g = G.remove_edge t.g e } region
  end

let remove_node t v =
  if not (G.mem_node t.g v) then t
  else begin
    let incident = G.out_edges t.g v @ G.in_edges t.g v in
    let region =
      List.fold_left
        (fun r e ->
          let a, b = G.edge_ends t.g e in
          with_edge (with_node (with_node r a) b) e)
        (with_node empty_region v) incident
    in
    refresh { t with g = G.remove_node t.g v } region
  end

let set_node_prop t v name value =
  refresh { t with g = G.set_node_prop t.g v name value } (with_node empty_region v)

let remove_node_prop t v name =
  refresh { t with g = G.remove_node_prop t.g v name } (with_node empty_region v)

let set_edge_prop t e name value =
  refresh { t with g = G.set_edge_prop t.g e name value } (with_edge empty_region e)

let remove_edge_prop t e name =
  refresh { t with g = G.remove_edge_prop t.g e name } (with_edge empty_region e)

let relabel_node t v label =
  let incident = G.out_edges t.g v @ G.in_edges t.g v in
  let region =
    List.fold_left
      (fun r e ->
        let a, b = G.edge_ends t.g e in
        with_edge (with_node (with_node r a) b) e)
      (with_node empty_region v) incident
  in
  refresh { t with g = G.relabel_node t.g v label } region
