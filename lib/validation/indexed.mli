(** The sequential per-rule validation engine.

    Same semantics as {!Naive} (property-tested extensional equality of
    the violation sets), but every rule runs as a compiled {!Kernels}
    slice over the frozen snapshot: the pair-quantifying rules read the
    sorted CSR adjacency segments (WS4/DS1/DS2 the out segments, DS3 the
    in segments) instead of hash indexes, and DS7 groups nodes by a
    serialized key vector.  Linear in the size of the graph plus the size
    of the output (a group of [k] equal elements still yields the
    [k(k-1)/2] pairwise violations the specification demands). *)

val check : Kernels.ctx -> Kernels.rule_set -> Violation.t list
(** Violations of the selected rule families, normalized. *)
