(** Pure per-rule validation kernels over graph-snapshot slices.

    The engine core shared by {!Indexed} (one slice covering the whole
    snapshot) and {!Parallel} (one slice per shard, executed on separate
    domains).  A kernel reads only immutable data — the graph, the schema,
    the frozen {!type-ctx} indexes — plus a caller-owned {!type-subtype_cache},
    and returns violations by consing onto its accumulator; it never
    mutates shared state, so kernels over disjoint slices commute and can
    run concurrently.  {!Violation.normalize} makes the merged result
    independent of slice boundaries and interleaving.

    Slice universes: WS1, DS4, DS5/DS6, SS1, SS2 slice [ctx.nodes]; WS2,
    WS3, SS3, SS4 slice [ctx.edges]; WS4 slices [ctx.idx.out_groups]; DS3
    slices [ctx.idx.in_groups]; DS1 and DS2 slice [ctx.idx.par_groups]
    (a loop is a group whose source equals its target); DS7 runs once per
    @key constraint. *)

type subtype_cache

val make_cache : unit -> subtype_cache
(** A fresh memoization cache for the named-subtype relation.  One per
    domain: caches are not safe to share across concurrent kernels. *)

type indexes = {
  out_by : (int * string, Pg_graph.Property_graph.edge list) Hashtbl.t;
  in_by : (int * string, Pg_graph.Property_graph.edge list) Hashtbl.t;
  parallel : (int * int * string, Pg_graph.Property_graph.edge list) Hashtbl.t;
  out_groups : ((int * string) * Pg_graph.Property_graph.edge list) array;
  in_groups : ((int * string) * Pg_graph.Property_graph.edge list) array;
  par_groups : ((int * int * string) * Pg_graph.Property_graph.edge list) array;
}

type ctx = {
  sch : Pg_schema.Schema.t;
  g : Pg_graph.Property_graph.t;
  env : Pg_schema.Values_w.env option;
  nodes : Pg_graph.Property_graph.node array;
  edges : Pg_graph.Property_graph.edge array;
  idx : indexes;
  distinct : Rules.field_constraint list;
  no_loops : Rules.field_constraint list;
  unique_for_target : Rules.field_constraint list;
  required_for_target : Rules.field_constraint list;
  required : Rules.field_constraint list;
  keys : (string * string list) list;
}

val make_ctx :
  ?env:Pg_schema.Values_w.env -> Pg_schema.Schema.t -> Pg_graph.Property_graph.t -> ctx
(** Snapshot the graph into arrays, build the edge indexes in one pass,
    and precompute the schema's constraint lists.  After this returns the
    context is frozen; kernels only read it. *)

type 'a kernel = ctx -> lo:int -> hi:int -> Violation.t list -> Violation.t list
(** A rule evaluated on the slice [lo, hi) of its universe ('a names the
    universe for documentation only). *)

type 'a cached_kernel =
  ctx -> subtype_cache -> lo:int -> hi:int -> Violation.t list -> Violation.t list

val ws1 : [ `Nodes ] kernel
val ws2 : [ `Edges ] kernel
val ws3 : [ `Edges ] cached_kernel
val ws4 : [ `Out_groups ] kernel
val ds1 : [ `Par_groups ] cached_kernel
val ds2 : [ `Par_groups ] cached_kernel
val ds3 : [ `In_groups ] cached_kernel
val ds4 : [ `Nodes ] cached_kernel
val ds56 : [ `Nodes ] cached_kernel

val ds7 :
  ctx -> subtype_cache -> string * string list -> Violation.t list -> Violation.t list
(** [ds7 ctx cache (owner, key_fields) acc]: the whole @key constraint at
    once (node grouping is global, so DS7 shards across constraints). *)

val ss1 : [ `Nodes ] kernel
val ss2 : [ `Nodes ] kernel
val ss3 : [ `Edges ] kernel
val ss4 : [ `Edges ] kernel
