(** Compiled per-rule validation kernels.

    A check first builds a {!ctx}: the compiled schema {!Pg_schema.Plan}
    plus the graph frozen into a {!Pg_graph.Snapshot} over the plan's
    symbol table.  Every rule of Section 5 then runs as pure integer
    comparisons — interned symbol equality, bitset subtype probes, run
    scans over the snapshot's sorted CSR segments — with strings
    materialized only for reported violations.

    Two consumption shapes share the same per-element rule bodies:

    - {e per-rule slice kernels} ([ws1] … [ss4], {!ds7}): each covers one
      rule over a sub-range of the node range [\[0, n)] or edge range
      [\[0, m)].  {!Indexed} runs full ranges sequentially; {!Parallel}
      shards the ranges across domains.  Kernels only read the frozen
      context, so slices commute and {!Violation.normalize} yields the
      same report for any schedule.
    - {e fused passes} ({!node_pass}/{!edge_pass}): everything the rule
      set says about one element in a single visit — the {!Linear}
      engine's one-pass shape. *)

type ctx = {
  plan : Pg_schema.Plan.t;
  snap : Pg_graph.Snapshot.t;
  env : Pg_schema.Values_w.env;
  gov : Governor.run;
      (** budget checkpointed by every kernel loop; {!Governor.no_run}
          (the default) restores the exact ungoverned code path *)
}

val make_ctx :
  ?env:Pg_schema.Values_w.env ->
  ?gov:Governor.run ->
  Pg_schema.Plan.t ->
  Pg_graph.Property_graph.t ->
  ctx
(** Freeze a graph against a compiled plan.  Interns any graph-only
    labels into the plan's symbol table, so resolving graphs against a
    shared plan is sequential-only; the resulting ctx is immutable and
    safe to share across domains (the governor run is [Atomic]-based).
    [gov] defaults to {!Governor.no_run}: unlimited, unmetered. *)

val ctx_of_snap :
  ?env:Pg_schema.Values_w.env ->
  ?gov:Governor.run ->
  Pg_schema.Plan.t ->
  Pg_graph.Snapshot.t ->
  ctx
(** Wrap an already-frozen snapshot — typically one mapped back from disk
    by {!Pg_graph.Snapshot_io.load}, which interns the snapshot's symbols
    into the plan's symbol table on the way in.  The caller is
    responsible for that symbol discipline; {!make_ctx} is the safe path
    for raw graphs. *)

type rule_set = { weak : bool; dirs : bool; strong : bool }
(** Which rule families a pass evaluates: WS1–WS4 ([weak]), DS1–DS7
    ([dirs]), SS1–SS4 ([strong]). *)

type kernel = ctx -> lo:int -> hi:int -> Violation.t list -> Violation.t list
(** One rule over the index range [\[lo, hi)] of its universe (nodes or
    edges), prepending violations to the accumulator. *)

(** {1 Per-rule slice kernels} *)

val ws1 : kernel
(** node properties are well-typed; universe: nodes *)

val ws2 : kernel
(** edge properties are well-typed; universe: edges *)

val ws3 : kernel
(** edge targets are subtype-correct; universe: edges *)

val ws4 : kernel
(** non-list fields justify at most one edge; universe: nodes *)

val ds1 : kernel
(** [@distinct]: no parallel edges; universe: nodes *)

val ds2 : kernel
(** [@noLoops]: no self-edges; universe: nodes *)

val ds3 : kernel
(** [@uniqueForTarget]: in-degree at most 1; universe: nodes *)

val ds4 : kernel
(** [@requiredForTarget]: a qualified incoming edge exists; universe: nodes *)

val ds56 : kernel
(** [@required] properties and edges; universe: nodes *)

val ss1 : kernel
(** node labels are object types; universe: nodes *)

val ss2 : kernel
(** node properties are declared attributes; universe: nodes *)

val ss3 : kernel
(** edge properties are declared arguments; universe: edges *)

val ss4 : kernel
(** edge labels are declared relationships; universe: edges *)

val ds7 : ctx -> Pg_schema.Plan.key -> Violation.t list -> Violation.t list
(** One [@key] constraint over all nodes (DS7), grouping by a
    collision-free serialization of the key tuple.  Parallelized across
    constraints, not node slices. *)

val ds7_groups :
  ctx -> Pg_schema.Plan.key -> (string, int list) Hashtbl.t -> lo:int -> hi:int -> unit
(** DS7 phase 1: group the nodes of [\[lo, hi)] by their serialized key
    tuple into the given table.  The sharded engines run one call per
    shard (each into its own table) and merge by concatenating the
    tables' lists per key — group member order is irrelevant to phase
    2.  Governed: checkpoints per node and notes the completed scans. *)

val ds7_emit :
  ctx ->
  Pg_schema.Plan.key ->
  (string, int list) Hashtbl.t ->
  Violation.t list ->
  Violation.t list
(** DS7 phase 2: the pairwise violations of every group of two or more
    nodes.  Notes the fresh findings against the governor. *)

(** {1 Shard-local and frontier passes}

    The sharded engine family splits the rules by locality against a
    {!Pg_graph.Partition}: {!shard_local} evaluates everything about a
    shard that needs no other shard's state (WS1–WS4, SS1–SS2, DS5/DS6,
    intra-shard DS1–DS4 and the per-edge rules on owned intra edges),
    and {!frontier} evaluates the cross-shard complement (DS1 sub-runs
    with remote targets, DS3/DS4 for nodes with cross-shard in-edges,
    WS2/WS3/SS3/SS4 on the frontier edges).  Every rule instance is
    computed exactly once across the two, so the union — plus a
    two-phase DS7 via {!ds7_groups}/{!ds7_emit} — normalizes to a report
    byte-identical to {!Indexed}'s for every shard count. *)

val shard_local :
  ctx -> Pg_graph.Partition.t -> int -> rule_set -> Violation.t list -> Violation.t list
(** The shard-local pass over shard [s]: its node range through the
    fused per-node body, then its owned intra edges through the shard's
    rebased CSR sub-view. *)

val frontier :
  ctx -> Pg_graph.Partition.t -> rule_set -> Violation.t list -> Violation.t list
(** The cross-shard pass, run once after every shard-local pass. *)

(** {1 Fused passes} *)

val node_pass : ctx -> rule_set -> int -> Violation.t list -> Violation.t list
(** All selected per-node rules on node [i], sharing one scan of the
    node's CSR segments (WS1, WS4, DS1–DS6, SS1, SS2). *)

val edge_pass : ctx -> rule_set -> int -> Violation.t list -> Violation.t list
(** All selected per-edge rules on edge [j] (WS2, WS3, SS3, SS4). *)

val ds7_all : ctx -> Violation.t list -> Violation.t list
(** Every [@key] constraint in sequence. *)
