(** Resource governance for the validation and satisfiability engines.

    Validation is polynomial (Theorem 1) but object-type satisfiability is
    NP-hard (Theorem 2); a production pipeline must bound both.  A
    {!t} ({e budget}) declares the bounds a caller is willing to spend —
    a wall-clock deadline, a cap on reported violations, a cooperative
    cancellation flag — and a {!run} is one metered execution against that
    budget.  Engines poll the run at checkpoints inside their kernels and
    stop {e cooperatively}: a stopped run makes every remaining checkpoint
    answer "stop", the engine drains without doing further work, and the
    caller receives a {e partial} result (a report with [complete =
    false], an [Unknown] verdict) instead of an exception or a hang.

    The unlimited budget is free: engines skip all metering when the run
    is {!active}-false, so an unbudgeted check executes exactly the same
    instructions as before this module existed, and its report is
    byte-identical.

    Runs are domain-safe: the stop flag and the counters are [Atomic]s
    shared by every domain of the {!Parallel} engine, so one domain
    noticing an expired deadline (or an external [cancel]) stops all of
    them. *)

(** {1 Budgets} *)

type t
(** What a caller is willing to spend.  Immutable except for the embedded
    cancellation flag. *)

val unlimited : t
(** No deadline, no violation cap, not cancellable.  Runs started from it
    are inert ({!active} is [false]) and meter nothing. *)

val make :
  ?deadline_ms:float -> ?max_violations:int -> ?cancel:bool Atomic.t -> unit -> t
(** [deadline_ms] is relative to {!start} (not to [make]).
    [max_violations] bounds the {e raw} findings before normalization —
    it is a work bound, not a promise about the length of the final
    deduplicated list.  [cancel] is an externally owned flag: set it to
    [true] (from another domain, a signal handler, ...) and every run of
    this budget stops at its next checkpoint. *)

val is_unlimited : t -> bool

val deadline_ms : t -> float option

val with_deadline_ms : t -> float -> t
(** Same cap and cancellation flag, different deadline — used by
    {!Pg_sat.Satisfiability.check_all} to slice one budget into per-type
    shares. *)

val cancel : t -> unit
(** Set the budget's cancellation flag. *)

(** {1 Runs} *)

type run
(** One metered execution: the absolute deadline, the stop flag, and the
    progress counters.  Safe to share across domains. *)

val start : t -> run
(** Resolve the deadline against the current wall clock.  Starting
    {!unlimited} (or any budget with nothing to enforce) returns an inert
    run. *)

val no_run : run
(** The inert run: never stops, meters nothing.  The default for every
    engine entry point. *)

val active : run -> bool
(** [false] exactly for inert runs — engines use this to skip metering
    entirely on the unbudgeted path. *)

val stopped : run -> bool
(** Cheap (two atomic loads): has this run been stopped — by deadline,
    violation cap, or cancellation?  Inert runs are never stopped. *)

val tick : run -> int -> bool
(** [tick run k] is the per-element checkpoint: [true] means stop now.
    Checks the stop and cancellation flags on every call; polls the wall
    clock only when [k land 255 = 0], so callers pass a dense local
    counter (starting at 0, which guarantees at least one clock poll per
    loop — a deadline of 0 stops before the first element). *)

val expired : run -> bool
(** {!tick} without the stride: always polls the clock.  For coarse
    checkpoints (between engine phases, between tableau rule
    applications batches). *)

val stop_now : run -> unit
(** Force the run to stop at every subsequent checkpoint. *)

val note_found : run -> int -> unit
(** Count [n] raw findings; stops the run once the total reaches the
    budget's [max_violations]. *)

val note_node_scans : run -> int -> unit
val note_edge_scans : run -> int -> unit
(** Progress accounting: completed element visits.  The per-rule engines
    revisit each element once per rule, so these measure work done, not
    distinct elements. *)

val added : 'a list -> 'a list -> int
(** [added acc' acc] is the number of cells [acc'] prepends to [acc]
    (rule bodies only ever cons onto their accumulator) — how engines
    count findings without touching every rule body. *)

val complete : run -> bool
(** [true] iff the run was never stopped: the result covers the whole
    input and equals the unbudgeted result. *)

val found : run -> int
val node_scans : run -> int
val edge_scans : run -> int

val exhausted_reason : string
(** ["budget exhausted"] — the prefix every budget-induced [Unknown]
    verdict starts with, so callers (the CLI exit-code logic) can
    distinguish budget exhaustion from genuine indeterminacy. *)
