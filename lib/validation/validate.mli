(** Validation façade: the Schema Validation Problem of Section 6.1.

    [check] evaluates the requested notion of satisfaction and returns a
    report; [conforms] answers the decision problem (does the graph
    {e strongly satisfy} the schema?).

    All engines except [Naive] run on the compiled representation: the
    schema is compiled once into a {!Pg_schema.Plan} (interned symbols,
    bitset subtype matrix, per-label constraint tables) and the graph is
    frozen into a {!Pg_graph.Snapshot} (CSR adjacency over the same
    symbols).  [check] compiles per call; to amortize compilation across
    many checks of the same schema, {!compile} once and use
    {!check_compiled}. *)

type engine =
  | Naive  (** string-level executable specification; quadratic pair rules *)
  | Linear  (** compiled, fused single pass per node/edge *)
  | Indexed  (** compiled, one slice kernel per rule; near-linear *)
  | Parallel
      (** the compiled kernels sharded across OCaml 5 domains; reports
          are byte-identical to [Linear] and [Indexed] *)
  | Sharded
      (** owner-computes over an explicit {!Pg_graph.Partition}: one
          task per node-range shard plus a cross-shard frontier pass,
          with the shard count decoupled from the domain count
          ([shards]); reports are byte-identical to [Indexed] for every
          shard/domain combination *)

type mode =
  | Weak  (** Definition 5.1: WS1–WS4 *)
  | Directives  (** Definition 5.2: DS1–DS7 *)
  | Strong  (** Definition 5.3: all fifteen rules *)

type report = {
  violations : Violation.t list;  (** normalized: sorted, deduplicated *)
  nodes_checked : int;  (** nodes in the graph *)
  edges_checked : int;  (** edges in the graph *)
  complete : bool;
      (** [true] iff no budget checkpoint stopped the run: [violations]
          is the full answer.  A partial report's violations are a
          subset of the complete report's (same rule and subject; the
          retained message of a duplicate group can differ). *)
  nodes_scanned : int;
  edges_scanned : int;
      (** element visits completed before the run (if budgeted) stopped.
          Per-rule engines ([Indexed], [Parallel], and [Naive]) visit an
          element once per applicable rule, so a complete run reports
          more visits than elements; with no budget both equal the graph
          totals. *)
  mode : mode;
  engine : engine;
}

val compile : Pg_schema.Schema.t -> Pg_schema.Plan.t
(** Compile a schema once for reuse with {!check_compiled}
    ([Pg_schema.Plan.compile]). *)

val check_compiled :
  ?engine:engine ->
  ?mode:mode ->
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  ?shards:int ->
  ?gov:Governor.t ->
  Pg_schema.Plan.t ->
  Pg_graph.Property_graph.t ->
  report
(** {!check} against a precompiled plan.  [Naive] ignores the compiled
    tables and runs on the plan's schema.  Reusing one plan across checks
    is sequential-only (freezing a graph interns its labels into the
    plan's symbol table); within a check the [Parallel] engine shares the
    plan across domains safely. *)

val check_snapshot :
  ?engine:engine ->
  ?mode:mode ->
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  ?shards:int ->
  ?gov:Governor.t ->
  Pg_schema.Plan.t ->
  Pg_graph.Snapshot.t ->
  report
(** {!check_compiled} over an already-frozen snapshot — typically one
    mapped back from disk by {!Pg_graph.Snapshot_io.load} against the
    plan's symbol table, which skips parsing and CSR construction
    entirely.  The compiled engines produce reports byte-identical to
    validating the source graph.  [Naive] is not available (it is a
    string-level oracle over the original graph text):
    @raise Invalid_argument if [engine = Naive]. *)

val check_mapped :
  ?mode:mode ->
  ?env:Pg_schema.Values_w.env ->
  ?shards:int ->
  ?gov:Governor.t ->
  Pg_schema.Plan.t ->
  Pg_graph.Snapshot_io.mapped ->
  (report, Pg_graph.Snapshot_io.error) result
(** Out-of-core validation through {!Shard_stream}: the snapshot stays
    mapped on disk and one shard's property vectors are resident at a
    time ([shards] defaults to [1] — whole-graph residency).  The engine
    is always [Sharded]; the report is byte-identical to the in-memory
    engines'.  Errors are the I/O layer's (a failed property read). *)

val check :
  ?engine:engine ->
  ?mode:mode ->
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  ?shards:int ->
  ?gov:Governor.t ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  report
(** Defaults: [engine = Indexed], [mode = Strong].  [domains] (default:
    all cores) affects the [Parallel] and [Sharded] engines; [shards]
    (default: [domains]) only the [Sharded] one.

    [gov] (default {!Governor.unlimited}) bounds the run: on deadline
    expiry, violation-cap overflow or cancellation the engines stop at
    their next checkpoint and the report comes back with
    [complete = false].  With the unlimited budget every engine takes
    its exact pre-governor code path, so reports are byte-identical to
    an ungoverned build. *)

val conforms :
  ?engine:engine ->
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  bool
(** [true] iff the graph strongly satisfies the schema. *)

val weakly_satisfies :
  ?engine:engine ->
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  bool

val satisfies_directives :
  ?engine:engine ->
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  bool

val violated_rules : report -> Violation.rule list
(** The distinct rules violated, in rule order. *)

val diagnostics : report -> Pg_diag.Diag.t list
(** The report as unified diagnostics: every violation (code = rule
    name), preceded by a [VAL001] budget diagnostic when
    [complete = false]. *)

val pp_report : Format.formatter -> report -> unit
