(** Validation façade: the Schema Validation Problem of Section 6.1.

    [check] evaluates the requested notion of satisfaction and returns a
    report; [conforms] answers the decision problem (does the graph
    {e strongly satisfy} the schema?). *)

type engine =
  | Naive  (** executable specification; quadratic pair rules *)
  | Indexed  (** hash-indexed; near-linear *)
  | Parallel
      (** the {!Indexed} kernels sharded across OCaml 5 domains;
          reports are byte-identical to [Indexed] *)

type mode =
  | Weak  (** Definition 5.1: WS1–WS4 *)
  | Directives  (** Definition 5.2: DS1–DS7 *)
  | Strong  (** Definition 5.3: all fifteen rules *)

type report = {
  violations : Violation.t list;  (** normalized: sorted, deduplicated *)
  nodes_checked : int;
  edges_checked : int;
  mode : mode;
  engine : engine;
}

val check :
  ?engine:engine ->
  ?mode:mode ->
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  report
(** Defaults: [engine = Indexed], [mode = Strong].  [domains] (default:
    all cores) only affects the [Parallel] engine. *)

val conforms :
  ?engine:engine ->
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  bool
(** [true] iff the graph strongly satisfies the schema. *)

val weakly_satisfies :
  ?engine:engine ->
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  bool

val satisfies_directives :
  ?engine:engine ->
  ?env:Pg_schema.Values_w.env ->
  ?domains:int ->
  Pg_schema.Schema.t ->
  Pg_graph.Property_graph.t ->
  bool

val violated_rules : report -> Violation.rule list
(** The distinct rules violated, in rule order. *)

val pp_report : Format.formatter -> report -> unit
