(* The registry of stable diagnostic codes.

   Codes are part of the CLI contract: scripts and CI pipelines match on
   them, so once published a code's meaning never changes (retire a code
   rather than reuse it).  Families:

     SDL0xx   lexical / syntax errors of the SDL front end
     PGS0xx   the PG-Schema front end (Pg_pgschema): syntax and
              lowering onto the shared schema IR
     LINT0xx  document-level well-formedness (Pg_sdl.Lint)
     SCH00x   AST -> schema build diagnostics (Pg_schema.Of_ast)
     SCH01x   consistency, Definitions 4.3-4.5 (Pg_schema.Consistency)
     WS/DS/SS validation rules of Section 5 (Pg_validation.Violation)
     VAL0xx   validation run status (Pg_validation.Validate)
     SAT0xx   object-type satisfiability, Section 6.2 (Pg_sat.Satisfiability)
     DIFF0xx  schema evolution (Pg_validation.Schema_diff)
     ANG0xx   the Angles baseline validator (Pg_angles.Angles_validate)
     SRV0xx   the validation service (gpgs serve): frame, overload and
              worker faults
     IO0xx    file system / input format errors
     CLI0xx   command-line usage errors *)

type cls =
  | Finding  (** the requested check failed on the input — exit 1 *)
  | Input  (** the input itself could not be used — exit 2 *)
  | Budget  (** a resource budget ran out before the answer — exit 3 *)
  | Advice  (** informational; never affects the exit code *)

type entry = { code : string; cls : cls; doc : string }

let e code cls doc = { code; cls; doc }

let all =
  [
    (* ---- SDL front end ---- *)
    e "SDL001" Input "lexical or syntax error in the SDL document";
    (* ---- PG-Schema front end ---- *)
    e "PGS001" Input "lexical or syntax error in the PG-Schema document";
    e "PGS002" Input "PG-Schema document does not lower onto the schema IR";
    e "PGS003" Advice "PG-Schema construct dropped or approximated by the lowering";
    (* ---- lint (document-level well-formedness) ---- *)
    e "LINT001" Finding "name is reserved (names must not begin with \"__\")";
    e "LINT002" Finding "duplicate argument name";
    e "LINT003" Advice "directive repeated on the same element";
    e "LINT004" Finding "duplicate field name";
    e "LINT005" Finding "interface implemented more than once";
    e "LINT006" Finding "union has no member types";
    e "LINT007" Finding "duplicate union member";
    e "LINT008" Finding "enum has no values";
    e "LINT009" Finding "duplicate enum value";
    e "LINT010" Finding "duplicate input field";
    e "LINT011" Finding "type defined more than once";
    e "LINT012" Finding "directive defined more than once";
    e "LINT013" Finding "more than one schema definition";
    e "LINT014" Finding "duplicate root operation type";
    (* ---- AST -> schema build ---- *)
    e "SCH001" Input "the document does not translate to a Property Graph schema";
    e "SCH002" Advice "a construct was ignored by the translation (Section 3.6)";
    e "SCH003" Input "the schema cannot be extended into a GraphQL API schema (Section 3.6)";
    (* ---- consistency (Definitions 4.3-4.5) ---- *)
    e "SCH010" Finding "implementing type lacks an interface field (Definition 4.3(1))";
    e "SCH011" Finding "field type is not a subtype of the interface's (Definition 4.3(1))";
    e "SCH012" Finding "implementing type lacks an interface field argument (Definition 4.3(2))";
    e "SCH013" Finding "argument type differs from the interface's (Definition 4.3(2))";
    e "SCH014" Finding "extra non-null argument not declared by the interface (Definition 4.3(3))";
    e "SCH015" Finding "unknown directive";
    e "SCH016" Finding "undeclared directive argument";
    e "SCH017" Finding "missing non-null directive argument (Definition 4.4(1))";
    e "SCH018" Finding "directive argument value outside valuesW (Definition 4.4(2))";
    (* ---- validation rules (Section 5); descriptions are the paper's
       captions and must stay identical to
       [Pg_validation.Violation.rule_description] ---- *)
    e "WS1" Finding "node properties must be of the required type";
    e "WS2" Finding "edge properties must be of the required type";
    e "WS3" Finding "target nodes must be of the required type";
    e "WS4" Finding "non-list fields contain at most one edge";
    e "DS1" Finding "edges identified by nodes and label (@distinct)";
    e "DS2" Finding "no loops (@noLoops)";
    e "DS3" Finding "target has at most one incoming edge (@uniqueForTarget)";
    e "DS4" Finding "target has at least one incoming edge (@requiredForTarget)";
    e "DS5" Finding "property is required (@required)";
    e "DS6" Finding "edge is required (@required)";
    e "DS7" Finding "keys (@key)";
    e "SS1" Finding "all nodes are justified";
    e "SS2" Finding "all node properties are justified";
    e "SS3" Finding "all edge properties are justified";
    e "SS4" Finding "all edges are justified";
    (* ---- validation run status ---- *)
    e "VAL001" Budget "validation stopped before completion (budget exhausted)";
    e "VAL002" Budget "validation job crashed; the supervisor caught the engine failure";
    (* ---- satisfiability (Section 6.2) ---- *)
    e "SAT001" Finding "object type is finitely unsatisfiable";
    e "SAT002" Finding "object type is unsatisfiable over arbitrary models (ALCQI)";
    e "SAT003" Advice "satisfiability verdict is unknown (engines inconclusive)";
    e "SAT004" Budget "satisfiability verdict is unknown (budget exhausted)";
    (* ---- schema evolution ---- *)
    e "DIFF001" Finding "breaking change: some conforming graph becomes invalid";
    e "DIFF002" Advice "compatible change: every conforming graph stays conformant";
    (* ---- Angles baseline validator ---- *)
    e "ANG001" Finding "node has an undeclared type";
    e "ANG002" Finding "node has an undeclared property";
    e "ANG003" Finding "node property value has the wrong type";
    e "ANG004" Finding "node lacks a mandatory property";
    e "ANG005" Finding "nodes share a unique property value";
    e "ANG006" Finding "edge matches no declared edge type";
    e "ANG007" Finding "edge has an undeclared property";
    e "ANG008" Finding "edge property value has the wrong type";
    e "ANG009" Finding "edge lacks a mandatory property";
    e "ANG010" Finding "source-side cardinality bound exceeded";
    e "ANG011" Finding "target-side cardinality bound exceeded";
    e "ANG012" Finding "mandatory edge type has no outgoing edge";
    (* ---- query engine / repair ---- *)
    e "QRY001" Input "the GraphQL query failed to parse, validate, or execute";
    e "REP001" Finding "the graph could not be repaired into strong satisfaction within bounds";
    (* ---- validation service (gpgs serve) ---- *)
    e "SRV001" Input "malformed request frame (not one JSON request object per line)";
    e "SRV002" Input "request frame exceeds the server's size limit";
    e "SRV003" Budget "request hit the server's default deadline before completion";
    e "SRV004" Budget "server overloaded; the request was shed before execution";
    e "SRV005" Budget "worker crashed executing the request (supervisor firewall)";
    e "SRV006" Budget "request wedged past its deadline plus grace; cancelled by the watchdog";
    (* ---- input / usage ---- *)
    e "IO001" Input "file could not be read or parsed";
    e "IO002" Input "malformed input record skipped by the streaming loader";
    e "IO003" Budget "input error budget exhausted; ingestion stopped early";
    e "IO004" Input "malformed snapshot file (bad magic, unsupported version, or broken layout)";
    e "IO005" Input "snapshot checksum mismatch; the file is corrupt";
    e "IO006" Input "device-level I/O failure reading a snapshot (EIO, failed mmap, ...)";
    e "CLI001" Input "command-line usage error";
  ]

let by_code = Hashtbl.create 97

let () = List.iter (fun entry -> Hashtbl.replace by_code entry.code entry) all

let find code = Hashtbl.find_opt by_code code
let describe code = Option.map (fun entry -> entry.doc) (find code)

let class_of code =
  match find code with Some entry -> entry.cls | None -> Finding
