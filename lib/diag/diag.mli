(** The unified diagnostic model.

    Every finding of the toolchain — lexer/parser errors, lint issues,
    schema-build and consistency diagnostics, validation violations,
    satisfiability verdicts, schema-diff changes, Angles baseline
    violations — converts into this one type, carrying a {e stable code}
    from {!Registry}, a severity, an optional source {!span}, an optional
    subject (the graph element or schema construct concerned), and a
    message.  Two renderers consume it: {!pp_text} reproduces the legacy
    per-producer text formats byte-for-byte, and {!to_json} /
    {!envelope} produce the machine-readable form behind the CLI's
    [--format json]. *)

type pos = {
  line : int;  (** 1-based *)
  column : int;  (** 1-based, in bytes *)
  offset : int;  (** 0-based byte offset *)
}

type span = { span_start : pos; span_end : pos }

type severity = Error | Warning | Info

type t = {
  code : string;  (** a stable code of {!Registry} *)
  severity : severity;
  span : span option;  (** source location, when one exists *)
  subject : string option;  (** e.g. ["node n3"], ["type User"] *)
  message : string;
  related : (span option * string) list;  (** secondary notes *)
}

val start_pos : pos
(** Line 1, column 1, offset 0. *)

val dummy_span : span
(** A span for synthesized nodes. *)

val span : pos -> pos -> span

val make :
  code:string ->
  severity:severity ->
  ?span:span ->
  ?subject:string ->
  ?related:(span option * string) list ->
  string ->
  t

val error :
  code:string -> ?span:span -> ?subject:string -> ?related:(span option * string) list -> string -> t

val warning :
  code:string -> ?span:span -> ?subject:string -> ?related:(span option * string) list -> string -> t

val info :
  code:string -> ?span:span -> ?subject:string -> ?related:(span option * string) list -> string -> t

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare : t -> t -> int
(** Source order (spanless first), then code, subject, message, severity. *)

val normalize : t list -> t list
(** Sort by {!compare} and drop exact duplicates. *)

val pp_pos : Format.formatter -> pos -> unit
val pp_span : Format.formatter -> span -> unit

val pp_text : Format.formatter -> t -> unit
(** Render in the legacy text format of the diagnostic's code family —
    byte-identical to the producer's own printer (parity-tested). *)

val to_text : t -> string

val pos_to_json : pos -> Pg_json.Json.t
val span_to_json : span -> Pg_json.Json.t

val to_json : t -> Pg_json.Json.t
(** [{"code", "severity", "span", "subject", "message", "related"}];
    absent span/subject render as [null]. *)

val to_ndjson : t list -> string
(** One compact JSON object per line. *)

(** The uniform CLI exit-code policy, computed from diagnostics. *)
module Exit : sig
  type cls =
    | Clean  (** exit 0 *)
    | Findings  (** exit 1 *)
    | Input_error  (** exit 2 *)
    | Budget  (** exit 3 *)

  val code : cls -> int
  val status : cls -> string

  val classify : t list -> cls
  (** Precedence: any {!Registry.Input}-class code yields [Input_error];
      else any {!Registry.Budget}-class code yields [Budget]; else any
      error-severity diagnostic yields [Findings]; else [Clean]. *)
end

val envelope :
  tool:string ->
  command:string ->
  ?summary:(string * Pg_json.Json.t) list ->
  ?cls:Exit.cls ->
  t list ->
  Pg_json.Json.t
(** The machine-readable report document: tool, command, status, exit
    code, severity counts, a command-specific summary object, and the
    diagnostics array.  [cls] defaults to [Exit.classify]. *)
