(* One typed diagnostic model for every layer of the toolchain.

   The producers (SDL front end, lint, schema build, consistency,
   validation, satisfiability, schema diff, the Angles baseline) each
   convert their native finding type into [t]; the renderers below turn a
   [t] back into the exact text the legacy per-producer printers emitted
   (guarded by qcheck parity tests) or into JSON for machines. *)

type pos = { line : int; column : int; offset : int }
type span = { span_start : pos; span_end : pos }
type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  span : span option;
  subject : string option;
  message : string;
  related : (span option * string) list;
}

let start_pos = { line = 1; column = 1; offset = 0 }
let dummy_span = { span_start = start_pos; span_end = start_pos }
let span span_start span_end = { span_start; span_end }

let make ~code ~severity ?span ?subject ?(related = []) message =
  { code; severity; span; subject; message; related }

let error ~code ?span ?subject ?related message =
  make ~code ~severity:Error ?span ?subject ?related message

let warning ~code ?span ?subject ?related message =
  make ~code ~severity:Warning ?span ?subject ?related message

let info ~code ?span ?subject ?related message =
  make ~code ~severity:Info ?span ?subject ?related message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* ---- ordering ---- *)

let compare_pos a b = Stdlib.compare (a.offset, a.line, a.column) (b.offset, b.line, b.column)

let compare_span a b =
  match compare_pos a.span_start b.span_start with
  | 0 -> compare_pos a.span_end b.span_end
  | c -> c

(* Source order first (spanless diagnostics sort before positioned ones,
   like a file-level header), then code, subject, message. *)
let compare a b =
  let span_key = function None -> (0, dummy_span) | Some s -> (1, s) in
  let (ka, sa), (kb, sb) = (span_key a.span, span_key b.span) in
  match Stdlib.compare ka kb with
  | 0 -> (
    match compare_span sa sb with
    | 0 ->
      Stdlib.compare
        (a.code, a.subject, a.message, a.severity)
        (b.code, b.subject, b.message, b.severity)
    | c -> c)
  | c -> c

let normalize ds = List.sort_uniq compare ds

(* ---- text rendering ---- *)

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.column

let pp_span ppf s =
  if s.span_start.line = s.span_end.line && s.span_start.column = s.span_end.column then
    pp_pos ppf s.span_start
  else Format.fprintf ppf "%a-%a" pp_pos s.span_start pp_pos s.span_end

let family code =
  let n = String.length code in
  let rec alpha i = if i < n && code.[i] >= 'A' && code.[i] <= 'Z' then alpha (i + 1) else i in
  String.sub code 0 (alpha 0)

(* Each family keeps the exact shape of its legacy printer, so text-mode
   CLI output is byte-identical to the pre-[Diag] toolchain (enforced by
   the parity tests in test_diag.ml). *)
let pp_text ppf d =
  match (family d.code, d.code) with
  | "SDL", _ -> (
    (* Pg_sdl.Source.pp_error: "LINE:COL: message" *)
    match d.span with
    | Some s -> Format.fprintf ppf "%a: %s" pp_span s d.message
    | None -> Format.pp_print_string ppf d.message)
  | "LINT", _ | _, "SCH001" | _, "SCH002" -> (
    (* Pg_sdl.Lint.pp_issue / Pg_schema.Of_ast.pp_diagnostic:
       "severity: LINE:COL: message" *)
    match d.span with
    | Some s -> Format.fprintf ppf "%s: %a: %s" (severity_to_string d.severity) pp_span s d.message
    | None -> Format.fprintf ppf "%s: %s" (severity_to_string d.severity) d.message)
  | ("WS" | "DS" | "SS"), _ ->
    (* Pg_validation.Violation.pp: "[RULE] subject: message (caption)" *)
    Format.fprintf ppf "[%s] %s: %s%s" d.code
      (Option.value d.subject ~default:"?")
      d.message
      (match Registry.describe d.code with Some doc -> " (" ^ doc ^ ")" | None -> "")
  | "DIFF", _ ->
    (* Pg_validation.Schema_diff.pp_change: "severity: subject — description" *)
    Format.fprintf ppf "%s: %s — %s"
      (match d.severity with Error -> "BREAKING" | Warning | Info -> "compatible")
      (Option.value d.subject ~default:"?")
      d.message
  | "ANG", _ ->
    (* Pg_angles.Angles_validate.pp_violation: "[rule] message" with the
       Angles rule name carried as the subject *)
    Format.fprintf ppf "[%s] %s" (Option.value d.subject ~default:d.code) d.message
  | ("SCH" | "SAT" | "VAL" | "IO" | "CLI" | "SRV"), _ ->
    (* consistency issues, verdicts, I/O and service errors print bare
       messages *)
    Format.pp_print_string ppf d.message
  | _ -> Format.fprintf ppf "%s: [%s] %s" (severity_to_string d.severity) d.code d.message

let to_text d = Format.asprintf "%a" pp_text d

(* ---- JSON rendering ---- *)

module Json = Pg_json.Json

let pos_to_json p =
  Json.Assoc [ ("line", Json.Int p.line); ("column", Json.Int p.column); ("offset", Json.Int p.offset) ]

let span_to_json s =
  Json.Assoc [ ("start", pos_to_json s.span_start); ("end", pos_to_json s.span_end) ]

let opt f = function None -> Json.Null | Some x -> f x

let to_json d =
  Json.Assoc
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_to_string d.severity));
      ("span", opt span_to_json d.span);
      ("subject", opt (fun s -> Json.String s) d.subject);
      ("message", Json.String d.message);
      ( "related",
        Json.List
          (List.map
             (fun (sp, msg) ->
               Json.Assoc [ ("span", opt span_to_json sp); ("message", Json.String msg) ])
             d.related) );
    ]

let to_ndjson ds = String.concat "" (List.map (fun d -> Json.to_string (to_json d) ^ "\n") ds)

(* ---- exit-code policy ---- *)

module Exit = struct
  type cls = Clean | Findings | Input_error | Budget

  let code = function Clean -> 0 | Findings -> 1 | Input_error -> 2 | Budget -> 3

  let status = function
    | Clean -> "ok"
    | Findings -> "findings"
    | Input_error -> "input-error"
    | Budget -> "budget-exhausted"

  (* Precedence mirrors the historical CLI: an unusable input trumps
     everything (the check never ran), an exhausted budget trumps findings
     (the findings are incomplete), and only error-severity diagnostics
     count as findings. *)
  let classify ds =
    let cls_of d = Registry.class_of d.code in
    if List.exists (fun d -> cls_of d = Registry.Input) ds then Input_error
    else if List.exists (fun d -> cls_of d = Registry.Budget) ds then Budget
    else if List.exists (fun d -> d.severity = Error) ds then Findings
    else Clean
end

(* ---- report envelope ---- *)

let severity_counts ds =
  let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
  (count Error, count Warning, count Info)

let envelope ~tool ~command ?(summary = []) ?cls ds =
  let cls = match cls with Some c -> c | None -> Exit.classify ds in
  let errors, warnings, infos = severity_counts ds in
  Json.Assoc
    [
      ("tool", Json.String tool);
      ("command", Json.String command);
      ("status", Json.String (Exit.status cls));
      ("exit", Json.Int (Exit.code cls));
      ( "counts",
        Json.Assoc
          [
            ("errors", Json.Int errors);
            ("warnings", Json.Int warnings);
            ("infos", Json.Int infos);
          ] );
      ("summary", Json.Assoc summary);
      ("diagnostics", Json.List (List.map to_json ds));
    ]
