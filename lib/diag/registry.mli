(** The registry of stable diagnostic codes.

    Every diagnostic the toolchain emits carries one of these codes; they
    are part of the machine-readable CLI contract (scripts and CI match on
    them), so a published code's meaning never changes.  See the code
    family table in README.md. *)

type cls =
  | Finding  (** the requested check failed on the input — exit 1 *)
  | Input  (** the input itself could not be used — exit 2 *)
  | Budget  (** a resource budget ran out before the answer — exit 3 *)
  | Advice  (** informational; never affects the exit code *)

type entry = { code : string; cls : cls; doc : string }

val all : entry list
(** Every registered code, grouped by family. *)

val find : string -> entry option
val describe : string -> string option

val class_of : string -> cls
(** [Finding] for unregistered codes — unknown codes must never silently
    upgrade to the input-error or budget exit paths. *)
