(** Syntactic well-formedness checks on SDL documents.

    These are the document-level rules of the GraphQL spec that do not need
    type information: name uniqueness, reserved names, non-empty member
    lists.  Semantic checks (unknown types, interface consistency, directive
    argument typing) live in the schema layer ([Pg_schema.Of_ast] and
    [Pg_schema.Consistency]).

    One deliberate deviation from the June 2018 spec: repeated directives on
    the same element are a {e warning}, not an error, because the paper's
    approach relies on repeating [@key] to declare multiple keys
    (Example 3.4). *)

type severity = Error | Warning

type issue = {
  code : string;  (** a stable [LINT0xx] code of {!Pg_diag.Registry} *)
  severity : severity;
  at : Source.span;
  message : string;
}

val pp_issue : Format.formatter -> issue -> unit

val to_diagnostic : issue -> Pg_diag.Diag.t

val check : Ast.document -> issue list
(** All issues found, in document order. *)

val errors : issue list -> issue list
(** The subset with [severity = Error]. *)
