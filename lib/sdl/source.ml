(* Positions and spans are the shared ones of [Pg_diag.Diag], so SDL
   errors convert into unified diagnostics without copying. *)

type pos = Pg_diag.Diag.pos = { line : int; column : int; offset : int }
type span = Pg_diag.Diag.span = { span_start : pos; span_end : pos }
type error = { at : span; message : string }

let start_pos = Pg_diag.Diag.start_pos
let dummy_span = Pg_diag.Diag.dummy_span
let span = Pg_diag.Diag.span
let pp_pos = Pg_diag.Diag.pp_pos
let pp_span = Pg_diag.Diag.pp_span

let pp_error ppf e = Format.fprintf ppf "%a: %s" pp_span e.at e.message
let error_to_string e = Format.asprintf "%a" pp_error e

(* Stable code SDL001: every lexical or syntax error of the front end. *)
let to_diagnostic e = Pg_diag.Diag.error ~code:"SDL001" ~span:e.at e.message

(* Deterministic multi-error order: by start position, then end position,
   then message; exact duplicates collapse. *)
let compare_error (a : error) b =
  let key e =
    ( e.at.span_start.offset,
      e.at.span_start.line,
      e.at.span_start.column,
      e.at.span_end.offset,
      e.message )
  in
  Stdlib.compare (key a) (key b)

let normalize_errors errors = List.sort_uniq compare_error errors
