type severity = Error | Warning
type issue = { code : string; severity : severity; at : Source.span; message : string }

let to_diagnostic i =
  let severity = match i.severity with Error -> Pg_diag.Diag.Error | Warning -> Pg_diag.Diag.Warning in
  Pg_diag.Diag.make ~code:i.code ~severity ~span:i.at i.message

let pp_issue ppf i =
  Format.fprintf ppf "%s: %a: %s"
    (match i.severity with Error -> "error" | Warning -> "warning")
    Source.pp_span i.at i.message

let errors issues = List.filter (fun i -> i.severity = Error) issues

let duplicates ~key items =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun item ->
      let k = key item in
      if Hashtbl.mem seen k then true
      else begin
        Hashtbl.add seen k ();
        false
      end)
    items

let check_reserved at kind name issues =
  if String.length name >= 2 && name.[0] = '_' && name.[1] = '_' then
    { code = "LINT001"; severity = Error;
      at;
      message = Printf.sprintf "%s name %S is reserved (names must not begin with \"__\")" kind name
    }
    :: issues
  else issues

let check_arguments owner (args : Ast.input_value_def list) issues =
  let issues =
    List.fold_left
      (fun issues (iv : Ast.input_value_def) ->
        check_reserved iv.iv_span "argument" iv.iv_name issues)
      issues args
  in
  List.fold_left
    (fun issues (iv : Ast.input_value_def) ->
      { code = "LINT002"; severity = Error;
        at = iv.iv_span;
        message = Printf.sprintf "duplicate argument %S in %s" iv.iv_name owner
      }
      :: issues)
    issues
    (duplicates ~key:(fun (iv : Ast.input_value_def) -> iv.iv_name) args)

(* Repeating @key declares several alternative keys (paper, Example 3.4), so
   it is exempt; any other repeated directive is flagged as a warning. *)
let check_repeated_directives owner (ds : Ast.directive list) issues =
  let repeatable (d : Ast.directive) = String.equal d.d_name "key" in
  List.fold_left
    (fun issues (d : Ast.directive) ->
      if repeatable d then issues
      else
        { code = "LINT003"; severity = Warning;
          at = d.d_span;
          message = Printf.sprintf "directive @%s is repeated on %s" d.d_name owner }
        :: issues)
    issues
    (duplicates ~key:(fun (d : Ast.directive) -> d.d_name) ds)

let check_fields owner (fields : Ast.field_def list) issues =
  let issues =
    List.fold_left
      (fun issues (f : Ast.field_def) ->
        let issues = check_reserved f.f_span "field" f.f_name issues in
        let issues =
          check_arguments (Printf.sprintf "field %S" f.f_name) f.f_arguments issues
        in
        check_repeated_directives (Printf.sprintf "field %S" f.f_name) f.f_directives issues)
      issues fields
  in
  List.fold_left
    (fun issues (f : Ast.field_def) ->
      { code = "LINT004"; severity = Error;
        at = f.f_span;
        message = Printf.sprintf "duplicate field %S in %s" f.f_name owner
      }
      :: issues)
    issues
    (duplicates ~key:(fun (f : Ast.field_def) -> f.f_name) fields)

let check_type_def (td : Ast.type_def) issues =
  let at = Ast.type_def_span td in
  let name = Ast.type_def_name td in
  let issues = check_reserved at "type" name issues in
  match td with
  | Ast.Scalar_type _ -> issues
  | Ast.Object_type d ->
    let issues =
      check_repeated_directives (Printf.sprintf "type %S" name) d.o_directives issues
    in
    let issues = check_fields (Printf.sprintf "type %S" name) d.o_fields issues in
    (match duplicates ~key:Fun.id d.o_interfaces with
    | [] -> issues
    | dups ->
      List.fold_left
        (fun issues i ->
          { code = "LINT005"; severity = Error;
            at;
            message = Printf.sprintf "type %S implements interface %S more than once" name i
          }
          :: issues)
        issues dups)
  | Ast.Interface_type d -> check_fields (Printf.sprintf "interface %S" name) d.i_fields issues
  | Ast.Union_type d ->
    let issues =
      if d.u_members = [] then
        { code = "LINT006"; severity = Error; at; message = Printf.sprintf "union %S has no member types" name }
        :: issues
      else issues
    in
    (match duplicates ~key:Fun.id d.u_members with
    | [] -> issues
    | dups ->
      List.fold_left
        (fun issues m ->
          { code = "LINT007"; severity = Error;
            at;
            message = Printf.sprintf "union %S lists member %S more than once" name m
          }
          :: issues)
        issues dups)
  | Ast.Enum_type d ->
    let issues =
      if d.e_values = [] then
        { code = "LINT008"; severity = Error; at; message = Printf.sprintf "enum %S has no values" name }
        :: issues
      else issues
    in
    (match duplicates ~key:(fun (ev : Ast.enum_value_def) -> ev.ev_name) d.e_values with
    | [] -> issues
    | dups ->
      List.fold_left
        (fun issues (ev : Ast.enum_value_def) ->
          { code = "LINT009"; severity = Error;
            at = ev.ev_span;
            message = Printf.sprintf "duplicate enum value %S in enum %S" ev.ev_name name
          }
          :: issues)
        issues dups)
  | Ast.Input_object_type d ->
    let issues =
      List.fold_left
        (fun issues (iv : Ast.input_value_def) ->
          check_reserved iv.iv_span "input field" iv.iv_name issues)
        issues d.io_fields
    in
    (match duplicates ~key:(fun (iv : Ast.input_value_def) -> iv.iv_name) d.io_fields with
    | [] -> issues
    | dups ->
      List.fold_left
        (fun issues (iv : Ast.input_value_def) ->
          { code = "LINT010"; severity = Error;
            at = iv.iv_span;
            message = Printf.sprintf "duplicate input field %S in input %S" iv.iv_name name
          }
          :: issues)
        issues dups)

let check (doc : Ast.document) =
  let type_defs =
    List.filter_map (function Ast.Type_definition td -> Some td | _ -> None) doc
  in
  let directive_defs =
    List.filter_map (function Ast.Directive_definition dd -> Some dd | _ -> None) doc
  in
  let schema_defs =
    List.filter_map (function Ast.Schema_definition sd -> Some sd | _ -> None) doc
  in
  let issues = [] in
  let issues = List.fold_left (fun issues td -> check_type_def td issues) issues type_defs in
  let issues =
    match duplicates ~key:Ast.type_def_name type_defs with
    | [] -> issues
    | dups ->
      List.fold_left
        (fun issues td ->
          { code = "LINT011"; severity = Error;
            at = Ast.type_def_span td;
            message = Printf.sprintf "type %S is defined more than once" (Ast.type_def_name td)
          }
          :: issues)
        issues dups
  in
  let issues =
    List.fold_left
      (fun issues (dd : Ast.directive_def) ->
        let issues = check_reserved dd.dd_span "directive" dd.dd_name issues in
        check_arguments (Printf.sprintf "directive @%s" dd.dd_name) dd.dd_arguments issues)
      issues directive_defs
  in
  let issues =
    match duplicates ~key:(fun (dd : Ast.directive_def) -> dd.dd_name) directive_defs with
    | [] -> issues
    | dups ->
      List.fold_left
        (fun issues (dd : Ast.directive_def) ->
          { code = "LINT012"; severity = Error;
            at = dd.dd_span;
            message = Printf.sprintf "directive @%s is defined more than once" dd.dd_name
          }
          :: issues)
        issues dups
  in
  let issues =
    match schema_defs with
    | [] | [ _ ] -> issues
    | _ :: extra ->
      List.fold_left
        (fun issues (sd : Ast.schema_def) ->
          { code = "LINT013"; severity = Error; at = sd.sd_span; message = "more than one schema definition" }
          :: issues)
        issues extra
  in
  let issues =
    List.fold_left
      (fun issues (sd : Ast.schema_def) ->
        match duplicates ~key:(fun (op, _) -> Ast.operation_type_name op) sd.sd_operations with
        | [] -> issues
        | dups ->
          List.fold_left
            (fun issues (op, _) ->
              { code = "LINT014"; severity = Error;
                at = sd.sd_span;
                message =
                  Printf.sprintf "duplicate root operation type %S" (Ast.operation_type_name op)
              }
              :: issues)
            issues dups)
      issues schema_defs
  in
  List.rev issues
