(** Recursive-descent parser for GraphQL SDL documents (June 2018 Edition,
    Section 3 — the type-system sublanguage).

    Supported: schema definitions, scalar/object/interface/union/enum/input
    type definitions, directive definitions, type extensions, descriptions
    (string and block-string), constant values, and directives with constant
    arguments.  Executable definitions (operations, fragments) are rejected
    with a clear error, as they cannot occur in a schema document. *)

val parse : string -> (Ast.document, Source.error) result
(** Lex and parse a complete SDL document. *)

val parse_with_recovery : string -> Ast.document * Source.error list
(** Like {!parse}, but on a syntax error the parser records a diagnostic
    and resynchronizes at the next top-level definition keyword
    ([schema], [scalar], [type], [interface], [union], [enum], [input],
    [directive], [extend]) at brace depth 0, then keeps parsing — so a
    document with several independent errors reports all of them in one
    run, together with every definition that did parse.

    Guarantees: always terminates; an empty error list means the
    document is exactly what {!parse} would have returned [Ok]; a
    document {!parse} rejects with a single error yields that same
    error first in the list.  The error list is normalized with
    {!Source.normalize_errors} — sorted by source position with exact
    duplicates collapsed — so multi-error output is deterministic
    regardless of recovery order.  Lexer errors are not recoverable:
    the result is [([], [e])]. *)

val parse_type_ref : string -> (Ast.type_ref, Source.error) result
(** Parse a single type reference such as ["[Foo!]!"]; used by tests and by
    the CLI. *)

val parse_value : string -> (Ast.value, Source.error) result
(** Parse a single constant value such as [{fields: ["id"]}]. *)
