(** Source positions, spans and errors for the GraphQL SDL front end.

    Positions and spans are the shared types of {!Pg_diag.Diag} (the
    equations below are exposed), so an SDL [error] converts into a
    unified diagnostic without copying. *)

type pos = Pg_diag.Diag.pos = {
  line : int;  (** 1-based *)
  column : int;  (** 1-based, in bytes *)
  offset : int;  (** 0-based byte offset *)
}

type span = Pg_diag.Diag.span = { span_start : pos; span_end : pos }

type error = { at : span; message : string }

val start_pos : pos
(** Line 1, column 1, offset 0. *)

val dummy_span : span
(** A span for synthesized AST nodes. *)

val span : pos -> pos -> span

val pp_pos : Format.formatter -> pos -> unit
val pp_span : Format.formatter -> span -> unit
val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val to_diagnostic : error -> Pg_diag.Diag.t
(** Code [SDL001], severity error. *)

val compare_error : error -> error -> int
(** Source order: start position, end position, message. *)

val normalize_errors : error list -> error list
(** Sort by {!compare_error} and drop exact duplicates, so multi-error
    reports are deterministic regardless of recovery order. *)
