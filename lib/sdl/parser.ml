type state = { tokens : Token.located array; mutable pos : int }

exception Error of Source.error

let peek st = st.tokens.(st.pos)
let peek_token st = (peek st).token
let span_here st = (peek st).at

let fail st message =
  raise (Error { Source.at = span_here st; message })

let failf st fmt = Format.kasprintf (fail st) fmt

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let expect st expected =
  let t = peek_token st in
  if t = expected then advance st
  else
    failf st "expected %s, found %s" (Token.describe expected) (Token.describe t)

let name st =
  match peek_token st with
  | Token.Name n ->
    advance st;
    n
  | t -> failf st "expected a name, found %s" (Token.describe t)

let keyword st kw =
  match peek_token st with
  | Token.Name n when String.equal n kw -> advance st
  | t -> failf st "expected %S, found %s" kw (Token.describe t)

let try_keyword st kw =
  match peek_token st with
  | Token.Name n when String.equal n kw ->
    advance st;
    true
  | _ -> false

let try_token st tok =
  if peek_token st = tok then begin
    advance st;
    true
  end
  else false

(* Description : StringValue (spec 3.1) *)
let description st =
  match peek_token st with
  | Token.String s | Token.Block_string s ->
    advance st;
    Some s
  | _ -> None

(* Value (const) : spec 2.9, without variables *)
let rec value st : Ast.value =
  match peek_token st with
  | Token.Int i ->
    advance st;
    Ast.Int_value i
  | Token.Float f ->
    advance st;
    Ast.Float_value f
  | Token.String s | Token.Block_string s ->
    advance st;
    Ast.String_value s
  | Token.Name "true" ->
    advance st;
    Ast.Boolean_value true
  | Token.Name "false" ->
    advance st;
    Ast.Boolean_value false
  | Token.Name "null" ->
    advance st;
    Ast.Null_value
  | Token.Name n ->
    advance st;
    Ast.Enum_value n
  | Token.Bracket_open ->
    advance st;
    let rec elements acc =
      if try_token st Token.Bracket_close then List.rev acc
      else elements (value st :: acc)
    in
    Ast.List_value (elements [])
  | Token.Brace_open ->
    advance st;
    let rec fields acc =
      if try_token st Token.Brace_close then List.rev acc
      else begin
        let k = name st in
        expect st Token.Colon;
        let v = value st in
        fields ((k, v) :: acc)
      end
    in
    Ast.Object_value (fields [])
  | Token.Dollar -> fail st "variables are not allowed in SDL documents"
  | t -> failf st "expected a value, found %s" (Token.describe t)

(* Type : NamedType | ListType | NonNullType (spec 2.11) *)
let rec type_ref st : Ast.type_ref =
  let inner =
    match peek_token st with
    | Token.Bracket_open ->
      advance st;
      let t = type_ref st in
      expect st Token.Bracket_close;
      Ast.List_type t
    | Token.Name n ->
      advance st;
      Ast.Named_type n
    | t -> failf st "expected a type, found %s" (Token.describe t)
  in
  if try_token st Token.Bang then begin
    if peek_token st = Token.Bang then fail st "a non-null type cannot wrap a non-null type";
    Ast.Non_null_type inner
  end
  else inner

(* Directives (const) : spec 2.12 *)
let directives st : Ast.directive list =
  let rec loop acc =
    match peek_token st with
    | Token.At ->
      let start = span_here st in
      advance st;
      let d_name = name st in
      let d_arguments =
        if try_token st Token.Paren_open then begin
          let rec args acc =
            if try_token st Token.Paren_close then List.rev acc
            else begin
              let k = name st in
              expect st Token.Colon;
              let v = value st in
              args ((k, v) :: acc)
            end
          in
          let args = args [] in
          if args = [] then fail st "empty argument list";
          args
        end
        else []
      in
      loop ({ Ast.d_name; d_arguments; d_span = start } :: acc)
    | _ -> List.rev acc
  in
  loop []

(* InputValueDefinition : Description? Name ':' Type DefaultValue? Directives? *)
let input_value_def st : Ast.input_value_def =
  let iv_span = span_here st in
  let iv_description = description st in
  let iv_name = name st in
  expect st Token.Colon;
  let iv_type = type_ref st in
  let iv_default = if try_token st Token.Equals then Some (value st) else None in
  let iv_directives = directives st in
  { Ast.iv_description; iv_name; iv_type; iv_default; iv_directives; iv_span }

let arguments_def st : Ast.input_value_def list =
  if try_token st Token.Paren_open then begin
    let rec loop acc =
      if try_token st Token.Paren_close then List.rev acc
      else loop (input_value_def st :: acc)
    in
    let args = loop [] in
    if args = [] then fail st "an arguments definition must not be empty";
    args
  end
  else []

(* FieldDefinition : Description? Name ArgumentsDefinition? ':' Type Directives? *)
let field_def st : Ast.field_def =
  let f_span = span_here st in
  let f_description = description st in
  let f_name = name st in
  let f_arguments = arguments_def st in
  expect st Token.Colon;
  let f_type = type_ref st in
  let f_directives = directives st in
  { Ast.f_description; f_name; f_arguments; f_type; f_directives; f_span }

let fields_def st : Ast.field_def list =
  if try_token st Token.Brace_open then begin
    let rec loop acc =
      if try_token st Token.Brace_close then List.rev acc else loop (field_def st :: acc)
    in
    loop []
  end
  else []

let input_fields_def st : Ast.input_value_def list =
  if try_token st Token.Brace_open then begin
    let rec loop acc =
      if try_token st Token.Brace_close then List.rev acc
      else loop (input_value_def st :: acc)
    in
    loop []
  end
  else []

(* ImplementsInterfaces : 'implements' '&'? NamedType ('&' NamedType)* *)
let implements_interfaces st =
  if try_keyword st "implements" then begin
    let _ = try_token st Token.Amp in
    let rec loop acc =
      let n = name st in
      if try_token st Token.Amp then loop (n :: acc) else List.rev (n :: acc)
    in
    loop []
  end
  else []

(* UnionMemberTypes : '=' '|'? NamedType ('|' NamedType)* *)
let union_members st =
  if try_token st Token.Equals then begin
    let _ = try_token st Token.Pipe in
    let rec loop acc =
      let n = name st in
      if try_token st Token.Pipe then loop (n :: acc) else List.rev (n :: acc)
    in
    loop []
  end
  else []

let enum_values_def st : Ast.enum_value_def list =
  if try_token st Token.Brace_open then begin
    let rec loop acc =
      if try_token st Token.Brace_close then List.rev acc
      else begin
        let ev_span = span_here st in
        let ev_description = description st in
        let ev_name = name st in
        if List.mem ev_name [ "true"; "false"; "null" ] then
          failf st "%S cannot be used as an enum value" ev_name;
        let ev_directives = directives st in
        loop ({ Ast.ev_description; ev_name; ev_directives; ev_span } :: acc)
      end
    in
    loop []
  end
  else []

let scalar_def st desc : Ast.scalar_def =
  let s_span = span_here st in
  keyword st "scalar";
  let s_name = name st in
  let s_directives = directives st in
  { Ast.s_description = desc; s_name; s_directives; s_span }

let object_def st desc : Ast.object_def =
  let o_span = span_here st in
  keyword st "type";
  let o_name = name st in
  let o_interfaces = implements_interfaces st in
  let o_directives = directives st in
  let o_fields = fields_def st in
  { Ast.o_description = desc; o_name; o_interfaces; o_directives; o_fields; o_span }

let interface_def st desc : Ast.interface_def =
  let i_span = span_here st in
  keyword st "interface";
  let i_name = name st in
  let i_directives = directives st in
  let i_fields = fields_def st in
  { Ast.i_description = desc; i_name; i_directives; i_fields; i_span }

let union_def st desc : Ast.union_def =
  let u_span = span_here st in
  keyword st "union";
  let u_name = name st in
  let u_directives = directives st in
  let u_members = union_members st in
  { Ast.u_description = desc; u_name; u_directives; u_members; u_span }

let enum_def st desc : Ast.enum_def =
  let e_span = span_here st in
  keyword st "enum";
  let e_name = name st in
  let e_directives = directives st in
  let e_values = enum_values_def st in
  { Ast.e_description = desc; e_name; e_directives; e_values; e_span }

let input_object_def st desc : Ast.input_object_def =
  let io_span = span_here st in
  keyword st "input";
  let io_name = name st in
  let io_directives = directives st in
  let io_fields = input_fields_def st in
  { Ast.io_description = desc; io_name; io_directives; io_fields; io_span }

let operation_type st : Ast.operation_type =
  match name st with
  | "query" -> Ast.Query
  | "mutation" -> Ast.Mutation
  | "subscription" -> Ast.Subscription
  | n -> failf st "expected \"query\", \"mutation\" or \"subscription\", found %S" n

let schema_def st : Ast.schema_def =
  let sd_span = span_here st in
  keyword st "schema";
  let sd_directives = directives st in
  expect st Token.Brace_open;
  let rec loop acc =
    if try_token st Token.Brace_close then List.rev acc
    else begin
      let op = operation_type st in
      expect st Token.Colon;
      let ty = name st in
      loop ((op, ty) :: acc)
    end
  in
  let sd_operations = loop [] in
  if sd_operations = [] then fail st "a schema definition must declare at least one root operation";
  { Ast.sd_directives; sd_operations; sd_span }

let directive_locations st =
  let _ = try_token st Token.Pipe in
  let rec loop acc =
    let n = name st in
    let loc =
      match Ast.directive_location_of_name n with
      | Some l -> l
      | None -> failf st "unknown directive location %S" n
    in
    if try_token st Token.Pipe then loop (loc :: acc) else List.rev (loc :: acc)
  in
  loop []

let directive_def st desc : Ast.directive_def =
  let dd_span = span_here st in
  keyword st "directive";
  expect st Token.At;
  let dd_name = name st in
  let dd_arguments = arguments_def st in
  keyword st "on";
  let dd_locations = directive_locations st in
  { Ast.dd_description = desc; dd_name; dd_arguments; dd_locations; dd_span }

let type_extension st : Ast.type_extension =
  keyword st "extend";
  match peek_token st with
  | Token.Name "scalar" -> Ast.Scalar_extension (scalar_def st None)
  | Token.Name "type" -> Ast.Object_extension (object_def st None)
  | Token.Name "interface" -> Ast.Interface_extension (interface_def st None)
  | Token.Name "union" -> Ast.Union_extension (union_def st None)
  | Token.Name "enum" -> Ast.Enum_extension (enum_def st None)
  | Token.Name "input" -> Ast.Input_object_extension (input_object_def st None)
  | Token.Name "schema" -> fail st "schema extensions are not supported"
  | t -> failf st "expected a type keyword after \"extend\", found %s" (Token.describe t)

let definition st : Ast.definition =
  let desc = description st in
  match peek_token st with
  | Token.Name "schema" ->
    if desc <> None then fail st "a schema definition cannot have a description";
    Ast.Schema_definition (schema_def st)
  | Token.Name "scalar" -> Ast.Type_definition (Ast.Scalar_type (scalar_def st desc))
  | Token.Name "type" -> Ast.Type_definition (Ast.Object_type (object_def st desc))
  | Token.Name "interface" ->
    Ast.Type_definition (Ast.Interface_type (interface_def st desc))
  | Token.Name "union" -> Ast.Type_definition (Ast.Union_type (union_def st desc))
  | Token.Name "enum" -> Ast.Type_definition (Ast.Enum_type (enum_def st desc))
  | Token.Name "input" ->
    Ast.Type_definition (Ast.Input_object_type (input_object_def st desc))
  | Token.Name "directive" -> Ast.Directive_definition (directive_def st desc)
  | Token.Name "extend" ->
    if desc <> None then fail st "a type extension cannot have a description";
    Ast.Type_extension (type_extension st)
  | Token.Name ("query" | "mutation" | "subscription" | "fragment") ->
    fail st "executable definitions cannot occur in an SDL document"
  | t -> failf st "expected a type system definition, found %s" (Token.describe t)

let document st : Ast.document =
  let rec loop acc =
    if peek_token st = Token.Eof then List.rev acc else loop (definition st :: acc)
  in
  let defs = loop [] in
  if defs = [] then fail st "empty document";
  defs

(* ------------------------------------------------------------------ *)
(* Error recovery                                                      *)

let is_top_level_keyword = function
  | "schema" | "scalar" | "type" | "interface" | "union" | "enum" | "input"
  | "directive" | "extend" ->
    true
  | _ -> false

(* After a syntax error, skip forward to a plausible start of the next
   top-level definition: the next definition keyword at brace depth 0
   (depth counted from the error point, clamped at 0 so the closing
   brace of the definition we crashed inside does not go negative).

   Progress/termination: when the failed parse consumed nothing
   ([st.pos = start_pos]) we consume one token up front; afterwards
   every loop iteration either advances or stops at [Eof] (where
   [advance] is a no-op) or at a keyword — and a keyword stop leaves
   [st.pos > start_pos], so the caller's next [definition] attempt
   starts strictly later in the token stream. *)
let synchronize st start_pos =
  if st.pos = start_pos then advance st;
  let depth = ref 0 in
  let stop = ref false in
  while not !stop do
    match peek_token st with
    | Token.Eof -> stop := true
    | Token.Name n when !depth = 0 && is_top_level_keyword n -> stop := true
    | Token.Brace_open ->
      incr depth;
      advance st
    | Token.Brace_close ->
      if !depth > 0 then decr depth;
      advance st
    | _ -> advance st
  done

let document_with_recovery st : Ast.document * Source.error list =
  let defs = ref [] in
  let errs = ref [] in
  while peek_token st <> Token.Eof do
    let start_pos = st.pos in
    match definition st with
    | d -> defs := d :: !defs
    | exception Error e ->
      errs := e :: !errs;
      synchronize st start_pos
  done;
  (List.rev !defs, List.rev !errs)

let with_tokens src k =
  match Lexer.tokenize src with
  | Result.Error e -> Result.Error e
  | Ok tokens -> (
    let st = { tokens = Array.of_list tokens; pos = 0 } in
    try
      let result = k st in
      if peek_token st <> Token.Eof then
        failf st "unexpected %s after the end of the document"
          (Token.describe (peek_token st))
      else Ok result
    with Error e -> Result.Error e)

let parse src = with_tokens src document
let parse_type_ref src = with_tokens src type_ref
let parse_value src = with_tokens src value

let parse_with_recovery src =
  match Lexer.tokenize src with
  | Result.Error e -> ([], [ e ])
  | Ok tokens -> (
    let st = { tokens = Array.of_list tokens; pos = 0 } in
    match document_with_recovery st with
    | [], [] ->
      (* parity with {!parse}: an empty document is still an error *)
      ([], [ { Source.at = span_here st; message = "empty document" } ])
    | defs, errs ->
      (* deterministic multi-error output: source order, duplicates
         collapsed, regardless of the order recovery found them in *)
      (defs, Source.normalize_errors errs))
