(** Abstract syntax of GraphQL SDL documents (June 2018 Edition, Section 3).

    The AST covers the complete type-system sublanguage: schema definitions,
    all six kinds of type definitions, directive definitions, type
    extensions, descriptions, and constant values.  Executable definitions
    (queries etc.) are outside the scope of this library. *)

type span = Source.span

(** Constant input values (spec 2.9); variables cannot occur in an SDL
    document, so only the [Const] variants exist.  The type is an
    equation onto the frontend-neutral {!Pg_ir.Values.value}: values
    flow into the schema IR unchanged, and every frontend shares one
    representation. *)
type value = Pg_ir.Values.value =
  | Int_value of int
  | Float_value of float
  | String_value of string
  | Boolean_value of bool
  | Null_value
  | Enum_value of string
  | List_value of value list
  | Object_value of (string * value) list

(** Type references (spec 3.4.1): named, list, and non-null wrapping types.
    Well-formedness (a non-null type cannot wrap a non-null type) is
    enforced by the parser, not by this type. *)
type type_ref = Named_type of string | List_type of type_ref | Non_null_type of type_ref

type directive = { d_name : string; d_arguments : (string * value) list; d_span : span }

(** An InputValueDefinition: an argument of a field or directive, or a
    field of an input object type. *)
type input_value_def = {
  iv_description : string option;
  iv_name : string;
  iv_type : type_ref;
  iv_default : value option;
  iv_directives : directive list;
  iv_span : span;
}

type field_def = {
  f_description : string option;
  f_name : string;
  f_arguments : input_value_def list;
  f_type : type_ref;
  f_directives : directive list;
  f_span : span;
}

type enum_value_def = {
  ev_description : string option;
  ev_name : string;
  ev_directives : directive list;
  ev_span : span;
}

type object_def = {
  o_description : string option;
  o_name : string;
  o_interfaces : string list;
  o_directives : directive list;
  o_fields : field_def list;
  o_span : span;
}

type interface_def = {
  i_description : string option;
  i_name : string;
  i_directives : directive list;
  i_fields : field_def list;
  i_span : span;
}

type union_def = {
  u_description : string option;
  u_name : string;
  u_directives : directive list;
  u_members : string list;
  u_span : span;
}

type scalar_def = {
  s_description : string option;
  s_name : string;
  s_directives : directive list;
  s_span : span;
}

type enum_def = {
  e_description : string option;
  e_name : string;
  e_directives : directive list;
  e_values : enum_value_def list;
  e_span : span;
}

type input_object_def = {
  io_description : string option;
  io_name : string;
  io_directives : directive list;
  io_fields : input_value_def list;
  io_span : span;
}

type type_def =
  | Scalar_type of scalar_def
  | Object_type of object_def
  | Interface_type of interface_def
  | Union_type of union_def
  | Enum_type of enum_def
  | Input_object_type of input_object_def

(** Type extensions (spec 3.2 onwards, "extend ..."). *)
type type_extension =
  | Scalar_extension of scalar_def
  | Object_extension of object_def
  | Interface_extension of interface_def
  | Union_extension of union_def
  | Enum_extension of enum_def
  | Input_object_extension of input_object_def

type operation_type = Query | Mutation | Subscription

type schema_def = {
  sd_directives : directive list;
  sd_operations : (operation_type * string) list;
  sd_span : span;
}

(** ExecutableDirectiveLocation and TypeSystemDirectiveLocation (spec 3.13).
    Like {!value}, an equation onto {!Pg_ir.Values.directive_location}. *)
type directive_location = Pg_ir.Values.directive_location =
  | Loc_query
  | Loc_mutation
  | Loc_subscription
  | Loc_field
  | Loc_fragment_definition
  | Loc_fragment_spread
  | Loc_inline_fragment
  | Loc_schema
  | Loc_scalar
  | Loc_object
  | Loc_field_definition
  | Loc_argument_definition
  | Loc_interface
  | Loc_union
  | Loc_enum
  | Loc_enum_value
  | Loc_input_object
  | Loc_input_field_definition

type directive_def = {
  dd_description : string option;
  dd_name : string;
  dd_arguments : input_value_def list;
  dd_locations : directive_location list;
  dd_span : span;
}

type definition =
  | Schema_definition of schema_def
  | Type_definition of type_def
  | Type_extension of type_extension
  | Directive_definition of directive_def

type document = definition list

(* ------------------------------------------------------------------ *)
(* Accessors used across the code base.                                *)

let type_def_name = function
  | Scalar_type d -> d.s_name
  | Object_type d -> d.o_name
  | Interface_type d -> d.i_name
  | Union_type d -> d.u_name
  | Enum_type d -> d.e_name
  | Input_object_type d -> d.io_name

let type_def_span = function
  | Scalar_type d -> d.s_span
  | Object_type d -> d.o_span
  | Interface_type d -> d.i_span
  | Union_type d -> d.u_span
  | Enum_type d -> d.e_span
  | Input_object_type d -> d.io_span

let rec base_type_name = function
  | Named_type n -> n
  | List_type t | Non_null_type t -> base_type_name t

let operation_type_name = function
  | Query -> "query"
  | Mutation -> "mutation"
  | Subscription -> "subscription"

let directive_location_name = function
  | Loc_query -> "QUERY"
  | Loc_mutation -> "MUTATION"
  | Loc_subscription -> "SUBSCRIPTION"
  | Loc_field -> "FIELD"
  | Loc_fragment_definition -> "FRAGMENT_DEFINITION"
  | Loc_fragment_spread -> "FRAGMENT_SPREAD"
  | Loc_inline_fragment -> "INLINE_FRAGMENT"
  | Loc_schema -> "SCHEMA"
  | Loc_scalar -> "SCALAR"
  | Loc_object -> "OBJECT"
  | Loc_field_definition -> "FIELD_DEFINITION"
  | Loc_argument_definition -> "ARGUMENT_DEFINITION"
  | Loc_interface -> "INTERFACE"
  | Loc_union -> "UNION"
  | Loc_enum -> "ENUM"
  | Loc_enum_value -> "ENUM_VALUE"
  | Loc_input_object -> "INPUT_OBJECT"
  | Loc_input_field_definition -> "INPUT_FIELD_DEFINITION"

let directive_location_of_name = function
  | "QUERY" -> Some Loc_query
  | "MUTATION" -> Some Loc_mutation
  | "SUBSCRIPTION" -> Some Loc_subscription
  | "FIELD" -> Some Loc_field
  | "FRAGMENT_DEFINITION" -> Some Loc_fragment_definition
  | "FRAGMENT_SPREAD" -> Some Loc_fragment_spread
  | "INLINE_FRAGMENT" -> Some Loc_inline_fragment
  | "SCHEMA" -> Some Loc_schema
  | "SCALAR" -> Some Loc_scalar
  | "OBJECT" -> Some Loc_object
  | "FIELD_DEFINITION" -> Some Loc_field_definition
  | "ARGUMENT_DEFINITION" -> Some Loc_argument_definition
  | "INTERFACE" -> Some Loc_interface
  | "UNION" -> Some Loc_union
  | "ENUM" -> Some Loc_enum
  | "ENUM_VALUE" -> Some Loc_enum_value
  | "INPUT_OBJECT" -> Some Loc_input_object
  | "INPUT_FIELD_DEFINITION" -> Some Loc_input_field_definition
  | _ -> None

let equal_value = Pg_ir.Values.equal_value

let rec equal_type_ref t1 t2 =
  match t1, t2 with
  | Named_type a, Named_type b -> String.equal a b
  | List_type a, List_type b | Non_null_type a, Non_null_type b -> equal_type_ref a b
  | (Named_type _ | List_type _ | Non_null_type _), _ -> false
