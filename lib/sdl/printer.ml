let buf_add = Buffer.add_string

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> buf_add buf "\\\""
      | '\\' -> buf_add buf "\\\\"
      | '\n' -> buf_add buf "\\n"
      | '\r' -> buf_add buf "\\r"
      | '\t' -> buf_add buf "\\t"
      | c when Char.code c < 0x20 -> buf_add buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Constant values render in the IR's canonical syntax (shared with every
   frontend's diagnostics), which is exactly the SDL literal syntax. *)
let value_to_string : Ast.value -> string = Pg_ir.Values.to_string

let rec type_ref_to_string : Ast.type_ref -> string = function
  | Ast.Named_type n -> n
  | Ast.List_type t -> Printf.sprintf "[%s]" (type_ref_to_string t)
  | Ast.Non_null_type t -> type_ref_to_string t ^ "!"

let directive_to_string (d : Ast.directive) =
  match d.d_arguments with
  | [] -> "@" ^ d.d_name
  | args ->
    Printf.sprintf "@%s(%s)" d.d_name
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s: %s" k (value_to_string v)) args))

let directives_suffix = function
  | [] -> ""
  | ds -> " " ^ String.concat " " (List.map directive_to_string ds)

(* Descriptions are printed as block strings when they contain line breaks,
   plain strings otherwise.  Inside a block string the only escapable
   sequence is the triple quote.  Note the block-string dedent algorithm
   normalizes indentation common to all lines; descriptions produced by the
   parser are already in normalized form, so printing round-trips. *)
let escape_block s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 2 < n && s.[!i] = '"' && s.[!i + 1] = '"' && s.[!i + 2] = '"' then begin
      buf_add buf "\\\"\"\"";
      i := !i + 3
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let description_lines indent = function
  | None -> []
  | Some desc ->
    if String.contains desc '\n' then
      let body =
        String.split_on_char '\n' (escape_block desc)
        |> List.map (fun l -> if l = "" then l else indent ^ l)
        |> String.concat "\n"
      in
      [ Printf.sprintf "%s\"\"\"\n%s\n%s\"\"\"" indent body indent ]
    else [ Printf.sprintf "%s\"%s\"" indent (escape_string desc) ]

let input_value_to_string (iv : Ast.input_value_def) =
  let default =
    match iv.iv_default with
    | None -> ""
    | Some v -> " = " ^ value_to_string v
  in
  Printf.sprintf "%s: %s%s%s" iv.iv_name
    (type_ref_to_string iv.iv_type)
    default
    (directives_suffix iv.iv_directives)

let arguments_to_string = function
  | [] -> ""
  | args -> Printf.sprintf "(%s)" (String.concat ", " (List.map input_value_to_string args))

let field_def_to_string (f : Ast.field_def) =
  Printf.sprintf "%s%s: %s%s" f.f_name
    (arguments_to_string f.f_arguments)
    (type_ref_to_string f.f_type)
    (directives_suffix f.f_directives)

let field_block lines = if lines = [] then " {\n}" else " {\n" ^ String.concat "\n" lines ^ "\n}"

let fields_to_lines fields =
  List.concat_map
    (fun (f : Ast.field_def) ->
      description_lines "  " f.f_description @ [ "  " ^ field_def_to_string f ])
    fields

let input_fields_to_lines fields =
  List.concat_map
    (fun (iv : Ast.input_value_def) ->
      description_lines "  " iv.iv_description @ [ "  " ^ input_value_to_string iv ])
    fields

let enum_values_to_lines values =
  List.concat_map
    (fun (ev : Ast.enum_value_def) ->
      description_lines "  " ev.ev_description
      @ [ "  " ^ ev.ev_name ^ directives_suffix ev.ev_directives ])
    values

let implements_to_string = function
  | [] -> ""
  | interfaces -> " implements " ^ String.concat " & " interfaces

let type_def_body : Ast.type_def -> string = function
  | Ast.Scalar_type d -> Printf.sprintf "scalar %s%s" d.s_name (directives_suffix d.s_directives)
  | Ast.Object_type d ->
    Printf.sprintf "type %s%s%s%s" d.o_name
      (implements_to_string d.o_interfaces)
      (directives_suffix d.o_directives)
      (field_block (fields_to_lines d.o_fields))
  | Ast.Interface_type d ->
    Printf.sprintf "interface %s%s%s" d.i_name
      (directives_suffix d.i_directives)
      (field_block (fields_to_lines d.i_fields))
  | Ast.Union_type d ->
    let members =
      match d.u_members with [] -> "" | ms -> " = " ^ String.concat " | " ms
    in
    Printf.sprintf "union %s%s%s" d.u_name (directives_suffix d.u_directives) members
  | Ast.Enum_type d ->
    Printf.sprintf "enum %s%s%s" d.e_name
      (directives_suffix d.e_directives)
      (field_block (enum_values_to_lines d.e_values))
  | Ast.Input_object_type d ->
    Printf.sprintf "input %s%s%s" d.io_name
      (directives_suffix d.io_directives)
      (field_block (input_fields_to_lines d.io_fields))

let type_def_description : Ast.type_def -> string option = function
  | Ast.Scalar_type d -> d.s_description
  | Ast.Object_type d -> d.o_description
  | Ast.Interface_type d -> d.i_description
  | Ast.Union_type d -> d.u_description
  | Ast.Enum_type d -> d.e_description
  | Ast.Input_object_type d -> d.io_description

let schema_def_to_string (sd : Ast.schema_def) =
  let ops =
    List.map
      (fun (op, ty) -> Printf.sprintf "  %s: %s" (Ast.operation_type_name op) ty)
      sd.sd_operations
  in
  Printf.sprintf "schema%s%s" (directives_suffix sd.sd_directives) (field_block ops)

let directive_def_to_string (dd : Ast.directive_def) =
  Printf.sprintf "directive @%s%s on %s" dd.dd_name
    (arguments_to_string dd.dd_arguments)
    (String.concat " | " (List.map Ast.directive_location_name dd.dd_locations))

let definition_to_string : Ast.definition -> string = function
  | Ast.Schema_definition sd -> schema_def_to_string sd
  | Ast.Type_definition td ->
    String.concat "\n" (description_lines "" (type_def_description td) @ [ type_def_body td ])
  | Ast.Type_extension ext ->
    let td =
      match ext with
      | Ast.Scalar_extension d -> Ast.Scalar_type d
      | Ast.Object_extension d -> Ast.Object_type d
      | Ast.Interface_extension d -> Ast.Interface_type d
      | Ast.Union_extension d -> Ast.Union_type d
      | Ast.Enum_extension d -> Ast.Enum_type d
      | Ast.Input_object_extension d -> Ast.Input_object_type d
    in
    "extend " ^ type_def_body td
  | Ast.Directive_definition dd ->
    String.concat "\n" (description_lines "" dd.dd_description @ [ directive_def_to_string dd ])

let document_to_string (doc : Ast.document) =
  String.concat "\n\n" (List.map definition_to_string doc) ^ "\n"

let pp_document ppf doc = Format.pp_print_string ppf (document_to_string doc)
