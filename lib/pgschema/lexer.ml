(* Hand-written lexer in the style of [Pg_sdl.Lexer]: a mutable cursor
   over the source bytes, positions shared with [Pg_diag.Diag] through
   [Pg_sdl.Source].  Commas are insignificant separators (as in SDL);
   comments are [//] to end of line and [/* ... */]. *)

module Source = Pg_sdl.Source

type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable column : int;
}

exception Error of Source.error

let fail st ?(at : Source.span option) message =
  let here : Source.pos = { line = st.line; column = st.column; offset = st.offset } in
  let at = match at with Some s -> s | None -> Source.span here here in
  raise (Error { at; message })

let pos st : Source.pos = { line = st.line; column = st.column; offset = st.offset }
let peek st = if st.offset < String.length st.src then Some st.src.[st.offset] else None

let peek2 st =
  if st.offset + 1 < String.length st.src then Some st.src.[st.offset + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.column <- 1
  | Some _ -> st.column <- st.column + 1
  | None -> ());
  st.offset <- st.offset + 1

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let skip_ignored st =
  let rec loop () =
    match peek st with
    | Some (' ' | '\t' | ',' | '\n' | '\r') ->
      advance st;
      loop ()
    | Some '/' when peek2 st = Some '/' ->
      let rec comment () =
        match peek st with
        | Some ('\n' | '\r') | None -> ()
        | Some _ ->
          advance st;
          comment ()
      in
      comment ();
      loop ()
    | Some '/' when peek2 st = Some '*' ->
      let start = pos st in
      advance st;
      advance st;
      let rec comment () =
        match peek st with
        | Some '*' when peek2 st = Some '/' ->
          advance st;
          advance st
        | Some _ ->
          advance st;
          comment ()
        | None -> fail st ~at:(Source.span start start) "unterminated comment"
      in
      comment ();
      loop ()
    | _ -> ()
  in
  loop ()

let name st =
  let start = st.offset in
  let rec loop () =
    match peek st with
    | Some c when is_name_char c ->
      advance st;
      loop ()
    | _ -> ()
  in
  advance st;
  loop ();
  String.sub st.src start (st.offset - start)

let number st =
  let start = st.offset in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
      advance st;
      digits ()
    | _ -> ()
  in
  digits ();
  (match peek st with
  | Some c when is_name_start c -> fail st "invalid number: a name may not follow digits"
  | _ -> ());
  int_of_string (String.sub st.src start (st.offset - start))

let next st : Token.located =
  skip_ignored st;
  let start = pos st in
  let single tok =
    advance st;
    { Token.token = tok; at = Source.span start (pos st) }
  in
  match peek st with
  | None -> { Token.token = Token.Eof; at = Source.span start start }
  | Some '(' -> single Token.Paren_open
  | Some ')' -> single Token.Paren_close
  | Some '[' -> single Token.Bracket_open
  | Some ']' -> single Token.Bracket_close
  | Some '{' -> single Token.Brace_open
  | Some '}' -> single Token.Brace_close
  | Some ':' -> single Token.Colon
  | Some '&' -> single Token.Amp
  | Some '*' -> single Token.Star
  | Some '-' when peek2 st = Some '>' ->
    advance st;
    advance st;
    { Token.token = Token.Arrow; at = Source.span start (pos st) }
  | Some '-' -> single Token.Dash
  | Some '.' when peek2 st = Some '.' ->
    advance st;
    advance st;
    { Token.token = Token.Dot_dot; at = Source.span start (pos st) }
  | Some c when is_name_start c ->
    let n = name st in
    { Token.token = Token.Name n; at = Source.span start (pos st) }
  | Some c when is_digit c ->
    let i = number st in
    { Token.token = Token.Int i; at = Source.span start (pos st) }
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let tokenize text : (Token.located list, Source.error) result =
  let st = { src = text; offset = 0; line = 1; column = 1 } in
  let rec loop acc =
    match next st with
    | { Token.token = Token.Eof; _ } as t -> List.rev (t :: acc)
    | t -> loop (t :: acc)
  in
  match loop [] with toks -> Ok toks | exception Error e -> Error e
