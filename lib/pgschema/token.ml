(** Lexical tokens of the PG-Schema fragment (PG-Schema: Schemas for
    Property Graphs, Section 3 — the [CREATE GRAPH TYPE] sublanguage).

    Keywords ([CREATE], [GRAPH], [TYPE], [STRICT], [LOOSE], [OPEN],
    [OPTIONAL], [ARRAY], [OUT], [IN]) are not tokenized specially: they
    are [Name]s that the parser recognizes case-insensitively in keyword
    position, matching PG-Schema's case-insensitive keywords while
    keeping labels and property names case-sensitive. *)

type t =
  | Paren_open  (** [(] *)
  | Paren_close  (** [)] *)
  | Bracket_open  (** [[] *)
  | Bracket_close  (** [\]] *)
  | Brace_open  (** [{] *)
  | Brace_close  (** [}] *)
  | Colon  (** [:] *)
  | Amp  (** [&] — label conjunction *)
  | Dash  (** [-] — edge connector *)
  | Arrow  (** [->] — edge direction *)
  | Dot_dot  (** [..] — cardinality range *)
  | Star  (** [*] — unbounded cardinality *)
  | Name of string  (** an identifier: letter or underscore, then letters, digits, underscores *)
  | Int of int  (** a non-negative cardinality bound *)
  | Eof

type located = { token : t; at : Pg_sdl.Source.span }

let pp ppf = function
  | Paren_open -> Format.pp_print_string ppf "("
  | Paren_close -> Format.pp_print_string ppf ")"
  | Bracket_open -> Format.pp_print_string ppf "["
  | Bracket_close -> Format.pp_print_string ppf "]"
  | Brace_open -> Format.pp_print_string ppf "{"
  | Brace_close -> Format.pp_print_string ppf "}"
  | Colon -> Format.pp_print_string ppf ":"
  | Amp -> Format.pp_print_string ppf "&"
  | Dash -> Format.pp_print_string ppf "-"
  | Arrow -> Format.pp_print_string ppf "->"
  | Dot_dot -> Format.pp_print_string ppf ".."
  | Star -> Format.pp_print_string ppf "*"
  | Name n -> Format.pp_print_string ppf n
  | Int i -> Format.pp_print_int ppf i
  | Eof -> Format.pp_print_string ppf "<eof>"

let describe = function
  | Name n -> Printf.sprintf "name %S" n
  | Int i -> Printf.sprintf "integer %d" i
  | Eof -> "end of input"
  | t -> Printf.sprintf "%S" (Format.asprintf "%a" pp t)
