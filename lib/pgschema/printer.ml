(* Canonical rendering of the PG-Schema AST.  The output parses back to
   an equal document (modulo spans): keywords upper-case, one element
   per line, commas between properties and elements (the lexer treats
   commas as insignificant, so this is purely cosmetic). *)

let property_to_string (p : Ast.property) =
  Printf.sprintf "%s%s %s%s"
    (if p.Ast.p_optional then "OPTIONAL " else "")
    p.Ast.p_name p.Ast.p_type
    (if p.Ast.p_array then " ARRAY" else "")

let props_suffix = function
  | [] -> ""
  | props ->
    Printf.sprintf " { %s }" (String.concat ", " (List.map property_to_string props))

let typed_name name label =
  match name with Some n -> Printf.sprintf "%s : %s" n label | None -> label

let node_type_to_string (n : Ast.node_type) =
  let labels =
    match n.Ast.n_labels with
    | primary :: rest -> String.concat " & " (typed_name n.Ast.n_name primary :: rest)
    | [] -> typed_name n.Ast.n_name "" (* unreachable: the parser requires a label *)
  in
  Printf.sprintf "(%s%s%s)" labels
    (if n.Ast.n_open then " OPEN" else "")
    (props_suffix n.Ast.n_props)

let cardinality_suffix keyword = function
  | None -> ""
  | Some c -> Printf.sprintf " %s %s" keyword (Ast.cardinality_to_string c)

let edge_type_to_string (e : Ast.edge_type) =
  Printf.sprintf "(:%s)-[%s%s%s]->(:%s)%s%s" e.Ast.e_src.Ast.ep_ref
    (typed_name e.Ast.e_name e.Ast.e_label)
    (if e.Ast.e_open then " OPEN" else "")
    (props_suffix e.Ast.e_props)
    e.Ast.e_tgt.Ast.ep_ref
    (cardinality_suffix "OUT" e.Ast.e_out)
    (cardinality_suffix "IN" e.Ast.e_in)

let element_to_string = function
  | Ast.Node_type n -> node_type_to_string n
  | Ast.Edge_type e -> edge_type_to_string e

let graph_type_to_string (gt : Ast.graph_type) =
  let mode = match gt.Ast.gt_mode with Ast.Strict -> "STRICT" | Ast.Loose -> "LOOSE" in
  let body =
    match gt.Ast.gt_elements with
    | [] -> ""
    | elems ->
      "\n  " ^ String.concat ",\n  " (List.map element_to_string elems) ^ "\n"
  in
  Printf.sprintf "CREATE GRAPH TYPE %s %s {%s}\n" gt.Ast.gt_name mode body

let document_to_string (doc : Ast.document) =
  String.concat "\n" (List.map graph_type_to_string doc)
