(** Abstract syntax of the supported PG-Schema fragment.

    One document is a sequence of [CREATE GRAPH TYPE] definitions, each
    holding node-type and edge-type elements:

    {v
    CREATE GRAPH TYPE SocialGraph STRICT {
      (personType : Person & Taxpayer OPEN { name STRING, OPTIONAL born INT }),
      (:personType)-[knows : Knows { since INT }]->(:personType) OUT 0..* IN 0..*
    }
    v}

    - A node type has a non-empty label conjunction; the first label is
      primary (it names the lowered object type), the rest are secondary
      (lowered to marker interfaces).  [OPEN] admits undeclared
      properties.
    - An edge type connects two endpoint references — a node-type name
      or a primary label — and may carry properties and [OUT]/[IN]
      endpoint cardinalities ([m..n] with [*] for unbounded).
    - Properties are [OPTIONAL]? name TYPE [ARRAY]?.

    Spans are the shared {!Pg_sdl.Source.span} (i.e. {!Pg_diag.Diag}
    spans), so PG-Schema diagnostics render like every other family. *)

type span = Pg_sdl.Source.span

type property = {
  p_optional : bool;
  p_name : string;
  p_type : string;  (** as written: [STRING], [INT], [DATE], ... *)
  p_array : bool;
  p_span : span;
}

type node_type = {
  n_name : string option;  (** declared type name, usable as endpoint reference *)
  n_labels : string list;  (** non-empty; head = primary label *)
  n_open : bool;
  n_props : property list;
  n_span : span;
}

type cardinality = { c_lo : int; c_hi : int option  (** [None] = [*] *) }

type endpoint = { ep_ref : string; ep_span : span }

type edge_type = {
  e_name : string option;
  e_label : string;
  e_src : endpoint;
  e_tgt : endpoint;
  e_open : bool;
  e_props : property list;
  e_out : cardinality option;  (** edges per source node *)
  e_in : cardinality option;  (** edges per target node *)
  e_span : span;
}

type element = Node_type of node_type | Edge_type of edge_type

type mode = Strict | Loose

type graph_type = {
  gt_name : string;
  gt_mode : mode;
  gt_elements : element list;
  gt_span : span;
}

type document = graph_type list

let element_span = function Node_type n -> n.n_span | Edge_type e -> e.e_span

let cardinality_to_string { c_lo; c_hi } =
  match c_hi with
  | Some hi -> Printf.sprintf "%d..%d" c_lo hi
  | None -> Printf.sprintf "%d..*" c_lo
