(* Exporting a schema back to PG-Schema text — the inverse of {!Lower}
   on its image.  Feature-complete round-tripping is impossible (SDL is
   the richer language), so like [Of_graphql] this module returns the
   translation together with a list of dropped/approximated constructs.

   On canonical schemas — attribute fields before relationship fields,
   marker interfaces only, no enums/unions/descriptions, the canonical
   nullability-directive pairings produced by {!Lower} — re-lowering the
   output reproduces the input schema exactly; the test suite pins this
   with a qcheck round-trip. *)

module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Sm = Map.Make (String)

let span = Pg_sdl.Source.dummy_span

type state = { mutable dropped : string list }

let drop st fmt = Format.kasprintf (fun m -> st.dropped <- m :: st.dropped) fmt

let has name uses = List.exists (fun u -> u.Schema.du_name = name) uses

(* Directives the translation itself expresses; anything else is noted. *)
let note_extra_directives st ~where ~known uses =
  List.iter
    (fun u ->
      if not (List.mem u.Schema.du_name known) then
        drop st "dropped directive @%s on %s" u.Schema.du_name where)
    uses

(* A property type is spelled verbatim: the builtin scalar names map back
   onto themselves case-insensitively ([String] -> STRING -> [String]),
   and custom scalar names pass through. *)
let check_type_spelling st ty =
  match String.uppercase_ascii ty with
  | ("STRING" | "INT" | "INTEGER" | "FLOAT" | "DOUBLE" | "BOOL" | "BOOLEAN" | "ID") as u
    when not (List.mem ty Schema.builtin_scalar_names) ->
    drop st "custom scalar %S collides with the reserved property type %s" ty u
  | _ -> ()

let property_of_wrapped st ~where ~required name (w : Wrapped.t) : Ast.property =
  let mk ~optional ~array ty =
    check_type_spelling st ty;
    { Ast.p_optional = optional; p_name = name; p_type = ty; p_array = array; p_span = span }
  in
  match w with
  | Wrapped.Named ty ->
    if required then drop st "@required on nullable %s is not expressible; kept optional" where;
    mk ~optional:true ~array:false ty
  | Wrapped.Non_null ty ->
    if not required then
      drop st "non-null %s without @required: PG-Schema mandatory implies presence" where;
    mk ~optional:false ~array:false ty
  | Wrapped.List { item; item_non_null; non_null } ->
    if not item_non_null then drop st "nullable list items of %s are approximated" where;
    if non_null && not required then
      drop st "non-null %s without @required: PG-Schema mandatory implies presence" where;
    if (not non_null) && required then
      drop st "@required on nullable %s is not expressible; kept optional" where;
    mk ~optional:(not non_null) ~array:true item

(* Attribute field -> property *)
let property_of_field st ~owner name (fd : Schema.field) : Ast.property =
  let where = Printf.sprintf "property %s.%s" owner name in
  if fd.Schema.fd_args <> [] then drop st "dropped arguments of attribute field %s" where;
  if fd.Schema.fd_description <> None then drop st "dropped description of %s" where;
  note_extra_directives st ~where ~known:[ "required" ] fd.Schema.fd_directives;
  property_of_wrapped st ~where ~required:(has "required" fd.Schema.fd_directives) name
    fd.Schema.fd_type

(* Edge argument -> edge property (no @required on arguments: the IR
   encodes mandatory edge properties purely through non-null). *)
let property_of_arg st ~owner ~edge name (a : Schema.argument) : Ast.property =
  let where = Printf.sprintf "edge property %s.%s.%s" owner edge name in
  if a.Schema.arg_default <> None then drop st "dropped default value of %s" where;
  note_extra_directives st ~where ~known:[] a.Schema.arg_directives;
  let required = match a.Schema.arg_type with Wrapped.Named _ -> false | _ -> true in
  property_of_wrapped st ~where ~required name a.Schema.arg_type

(* Relationship field -> edge type *)
let edge_of_field st ~owner name (fd : Schema.field) : Ast.edge_type =
  let where = Printf.sprintf "edge %s.%s" owner name in
  if fd.Schema.fd_description <> None then drop st "dropped description of %s" where;
  note_extra_directives st ~where
    ~known:[ "required"; "uniqueForTarget"; "requiredForTarget" ]
    fd.Schema.fd_directives;
  let required = has "required" fd.Schema.fd_directives in
  let out =
    match fd.Schema.fd_type with
    | Wrapped.Named _ ->
      if required then drop st "@required on nullable %s; exported as OUT 1..1" where;
      { Ast.c_lo = (if required then 1 else 0); c_hi = Some 1 }
    | Wrapped.Non_null _ ->
      if not required then drop st "non-null %s without @required; exported as OUT 1..1" where;
      { Ast.c_lo = 1; c_hi = Some 1 }
    | Wrapped.List { item_non_null; non_null; _ } ->
      if not item_non_null then drop st "nullable list items of %s are approximated" where;
      if non_null <> required then
        drop st "list nullability of %s disagrees with @required; using @required" where;
      { Ast.c_lo = (if required then 1 else 0); c_hi = None }
  in
  let inc =
    match
      (has "requiredForTarget" fd.Schema.fd_directives, has "uniqueForTarget" fd.Schema.fd_directives)
    with
    | true, true -> { Ast.c_lo = 1; c_hi = Some 1 }
    | false, true -> { Ast.c_lo = 0; c_hi = Some 1 }
    | true, false -> { Ast.c_lo = 1; c_hi = None }
    | false, false -> { Ast.c_lo = 0; c_hi = None }
  in
  {
    Ast.e_name = None;
    e_label = name;
    e_src = { Ast.ep_ref = owner; ep_span = span };
    e_tgt = { Ast.ep_ref = Wrapped.basetype fd.Schema.fd_type; ep_span = span };
    e_open = false;
    e_props =
      List.map (fun (an, a) -> property_of_arg st ~owner ~edge:name an a) fd.Schema.fd_args;
    e_out = Some out;
    e_in = Some inc;
    e_span = span;
  }

let graph_type_name = "Exported"

let document (sch : Schema.t) : Ast.document * string list =
  let st = { dropped = [] } in
  Sm.iter (fun n _ -> drop st "dropped enum type %s (exported values untyped)" n) sch.Schema.enums;
  Sm.iter (fun n _ -> drop st "dropped union type %s" n) sch.Schema.unions;
  Sm.iter
    (fun n (it : Schema.interface_type) ->
      if it.Schema.it_fields <> [] then
        drop st "interface %s has fields; exported as a bare secondary label" n)
    sch.Schema.interfaces;
  Sm.iter
    (fun n (dd : Schema.directive_def) ->
      ignore dd;
      if (not (Sm.mem n Schema.empty.Schema.directive_defs)) && n <> "open" then
        drop st "dropped directive definition @%s" n)
    sch.Schema.directive_defs;
  let used_scalars = ref [] in
  let nodes = ref [] and edges = ref [] in
  Sm.iter
    (fun name (ot : Schema.object_type) ->
      if ot.Schema.ot_description <> None then drop st "dropped description of type %s" name;
      note_extra_directives st ~where:(Printf.sprintf "type %s" name) ~known:[ "open" ]
        ot.Schema.ot_directives;
      let props = ref [] and rels = ref [] in
      List.iter
        (fun (fn, fd) ->
          let base = Wrapped.basetype fd.Schema.fd_type in
          match Schema.type_kind sch base with
          | Some Schema.Object -> rels := (fn, fd) :: !rels
          | Some (Schema.Scalar | Schema.Enum) ->
            used_scalars := base :: !used_scalars;
            props := property_of_field st ~owner:name fn fd :: !props
          | Some (Schema.Interface | Schema.Union) | None ->
            drop st "dropped field %s.%s: type %s is not a node type or scalar" name fn base)
        ot.Schema.ot_fields;
      List.iter
        (fun (_, (fd : Schema.field)) ->
          List.iter
            (fun (_, (a : Schema.argument)) ->
              used_scalars := Wrapped.basetype a.Schema.arg_type :: !used_scalars)
            fd.Schema.fd_args)
        ot.Schema.ot_fields;
      nodes :=
        Ast.Node_type
          {
            Ast.n_name = None;
            n_labels = name :: ot.Schema.ot_interfaces;
            n_open = Schema.is_open sch name;
            n_props = List.rev !props;
            n_span = span;
          }
        :: !nodes;
      List.iter
        (fun (fn, fd) -> edges := Ast.Edge_type (edge_of_field st ~owner:name fn fd) :: !edges)
        (List.rev !rels))
    sch.Schema.objects;
  Sm.iter
    (fun n (sc : Schema.scalar_type) ->
      if (not sc.Schema.sc_builtin) && not (List.mem n !used_scalars) then
        drop st "dropped unused custom scalar %s" n)
    sch.Schema.scalars;
  let gt =
    {
      Ast.gt_name = graph_type_name;
      gt_mode = Ast.Strict;
      gt_elements = List.rev !nodes @ List.rev !edges;
      gt_span = span;
    }
  in
  ([ gt ], List.rev st.dropped)

let translate sch = document sch

let to_string sch =
  let doc, _dropped = document sch in
  Printer.document_to_string doc
