(* Recursive-descent parser for the PG-Schema fragment, in the style of
   [Pg_sdl.Parser]: a cursor over the token array, exceptions for syntax
   errors, and an error-recovering entry point that records a diagnostic
   and resynchronizes at the next element or [CREATE] keyword, so a
   document with several independent errors reports all of them in one
   run. *)

module Source = Pg_sdl.Source

type st = { toks : Token.located array; mutable ix : int }

exception Syntax of Source.error

let err at fmt = Format.kasprintf (fun message -> raise (Syntax { Source.at; message })) fmt
let peek st = st.toks.(st.ix)
let peek_at st k =
  let i = st.ix + k in
  if i < Array.length st.toks then st.toks.(i) else st.toks.(Array.length st.toks - 1)

let advance st = if st.ix < Array.length st.toks - 1 then st.ix <- st.ix + 1

let prev_end st : Source.pos =
  if st.ix = 0 then (peek st).Token.at.Source.span_start
  else st.toks.(st.ix - 1).Token.at.Source.span_end

(* Keywords are case-insensitive names; labels and property names stay
   case-sensitive. *)
let uc = String.uppercase_ascii
let kw_is k = function Token.Name n -> String.equal (uc n) k | _ -> false
let at_kw st k = kw_is k (peek st).Token.token

let expect_kw st k =
  let t = peek st in
  if kw_is k t.Token.token then advance st
  else err t.Token.at "expected %s, found %s" k (Token.describe t.Token.token)

let expect st tok what =
  let t = peek st in
  if t.Token.token = tok then advance st
  else err t.Token.at "expected %s, found %s" what (Token.describe t.Token.token)

let parse_name st what =
  let t = peek st in
  match t.Token.token with
  | Token.Name n ->
    advance st;
    n
  | tok -> err t.Token.at "expected %s, found %s" what (Token.describe tok)

(* [OPTIONAL]? name TYPE [ARRAY]?.  A leading name is the OPTIONAL flag
   only when two more names follow, so a property may itself be called
   "optional". *)
let parse_property st : Ast.property =
  let start = (peek st).Token.at.Source.span_start in
  let optional =
    if
      at_kw st "OPTIONAL"
      && (match (peek_at st 1).Token.token with Token.Name _ -> true | _ -> false)
      && (match (peek_at st 2).Token.token with Token.Name _ -> true | _ -> false)
    then begin
      advance st;
      true
    end
    else false
  in
  let p_name = parse_name st "a property name" in
  let p_type = parse_name st "a property type" in
  let p_array =
    if at_kw st "ARRAY" then begin
      advance st;
      true
    end
    else false
  in
  { Ast.p_optional = optional; p_name; p_type; p_array; p_span = Source.span start (prev_end st) }

let parse_props st =
  expect st Token.Brace_open "'{'";
  let rec loop acc =
    match (peek st).Token.token with
    | Token.Brace_close ->
      advance st;
      List.rev acc
    | Token.Eof -> err (peek st).Token.at "unexpected end of input in a property list"
    | _ -> loop (parse_property st :: acc)
  in
  loop []

let parse_open_flag st =
  if at_kw st "OPEN" then begin
    advance st;
    true
  end
  else false

(* name ':' before the label list, e.g. [personType : Person] *)
let parse_optional_type_name st =
  match ((peek st).Token.token, (peek_at st 1).Token.token) with
  | Token.Name n, Token.Colon ->
    advance st;
    advance st;
    Some n
  | _ -> None

let parse_labels st =
  let first = parse_name st "a label" in
  let rec loop acc =
    if (peek st).Token.token = Token.Amp then begin
      advance st;
      loop (parse_name st "a label" :: acc)
    end
    else List.rev acc
  in
  loop [ first ]

let parse_node_rest st start : Ast.node_type =
  let n_name = parse_optional_type_name st in
  let n_labels = parse_labels st in
  let n_open = parse_open_flag st in
  let n_props = if (peek st).Token.token = Token.Brace_open then parse_props st else [] in
  expect st Token.Paren_close "')'";
  { Ast.n_name; n_labels; n_open; n_props; n_span = Source.span start (prev_end st) }

let parse_endpoint st : Ast.endpoint =
  let start = (peek st).Token.at.Source.span_start in
  expect st Token.Paren_open "'('";
  expect st Token.Colon "':'";
  let ep_ref = parse_name st "an endpoint reference" in
  expect st Token.Paren_close "')'";
  { Ast.ep_ref; ep_span = Source.span start (prev_end st) }

let parse_cardinality st : Ast.cardinality =
  let t = peek st in
  let lo =
    match t.Token.token with
    | Token.Int i ->
      advance st;
      i
    | tok -> err t.Token.at "expected a cardinality bound, found %s" (Token.describe tok)
  in
  expect st Token.Dot_dot "'..'";
  let t = peek st in
  match t.Token.token with
  | Token.Int i ->
    advance st;
    if i < lo then err t.Token.at "cardinality upper bound %d is below lower bound %d" i lo
    else { Ast.c_lo = lo; c_hi = Some i }
  | Token.Star ->
    advance st;
    { Ast.c_lo = lo; c_hi = None }
  | tok -> err t.Token.at "expected a cardinality upper bound, found %s" (Token.describe tok)

let parse_edge_rest st start src : Ast.edge_type =
  expect st Token.Dash "'-'";
  expect st Token.Bracket_open "'['";
  let e_name = parse_optional_type_name st in
  let e_label = parse_name st "an edge label" in
  let e_open = parse_open_flag st in
  let e_props = if (peek st).Token.token = Token.Brace_open then parse_props st else [] in
  expect st Token.Bracket_close "']'";
  expect st Token.Arrow "'->'";
  let tgt = parse_endpoint st in
  let e_out = ref None and e_in = ref None in
  let rec cards () =
    let t = peek st in
    let set which slot =
      advance st;
      let c = parse_cardinality st in
      (match !slot with
      | Some _ -> err t.Token.at "duplicate %s cardinality" which
      | None -> slot := Some c);
      cards ()
    in
    if at_kw st "OUT" then set "OUT" e_out
    else if at_kw st "IN" then set "IN" e_in
  in
  cards ();
  {
    Ast.e_name;
    e_label;
    e_src = src;
    e_tgt = tgt;
    e_open;
    e_props;
    e_out = !e_out;
    e_in = !e_in;
    e_span = Source.span start (prev_end st);
  }

(* Both element forms start with '('; an endpoint reference (':') after it
   means an edge type. *)
let parse_element st : Ast.element =
  let start = (peek st).Token.at.Source.span_start in
  let t = peek st in
  if t.Token.token <> Token.Paren_open then
    err t.Token.at "expected a node or edge type (starting with '('), found %s"
      (Token.describe t.Token.token)
  else if (peek_at st 1).Token.token = Token.Colon then begin
    let src = parse_endpoint st in
    Ast.Edge_type (parse_edge_rest st start src)
  end
  else begin
    advance st;
    Ast.Node_type (parse_node_rest st start)
  end

let parse_mode st =
  if at_kw st "STRICT" then begin
    advance st;
    Ast.Strict
  end
  else if at_kw st "LOOSE" then begin
    advance st;
    Ast.Loose
  end
  else Ast.Strict

(* ------------------------------------------------------------------ *)
(* Recovery: skip to the next element start ['('] or graph type [CREATE]
   at relative nesting depth 0.  The offending token is always consumed
   first, so recovery makes progress on any input. *)

let synchronize st =
  if (peek st).Token.token <> Token.Eof then advance st;
  let depth = ref 0 in
  let rec loop () =
    let t = peek st in
    match t.Token.token with
    | Token.Eof -> ()
    | Token.Paren_open when !depth <= 0 -> ()
    | Token.Brace_close when !depth <= 0 -> ()
    | Token.Name n when !depth <= 0 && String.equal (uc n) "CREATE" -> ()
    | Token.Paren_open | Token.Bracket_open | Token.Brace_open ->
      incr depth;
      advance st;
      loop ()
    | Token.Paren_close | Token.Bracket_close | Token.Brace_close ->
      decr depth;
      advance st;
      loop ()
    | _ ->
      advance st;
      loop ()
  in
  loop ()

let parse_graph_type st errs : Ast.graph_type =
  let start = (peek st).Token.at.Source.span_start in
  expect_kw st "CREATE";
  expect_kw st "GRAPH";
  expect_kw st "TYPE";
  let gt_name = parse_name st "a graph type name" in
  let gt_mode = parse_mode st in
  expect st Token.Brace_open "'{'";
  let elems = ref [] in
  let rec loop () =
    match (peek st).Token.token with
    | Token.Brace_close -> advance st
    | Token.Eof -> err (peek st).Token.at "unexpected end of input: missing '}'"
    | Token.Name n when String.equal (uc n) "CREATE" ->
      (* an unclosed body followed by the next graph type *)
      err (peek st).Token.at "missing '}' before the next CREATE"
    | _ -> (
      match parse_element st with
      | elem ->
        elems := elem :: !elems;
        loop ()
      | exception Syntax e ->
        errs := e :: !errs;
        synchronize st;
        loop ())
  in
  loop ();
  {
    Ast.gt_name;
    gt_mode;
    gt_elements = List.rev !elems;
    gt_span = Source.span start (prev_end st);
  }

let parse_with_recovery text : Ast.document * Source.error list =
  match Lexer.tokenize text with
  | Error e -> ([], [ e ])
  | Ok toks ->
    let st = { toks = Array.of_list toks; ix = 0 } in
    let errs = ref [] in
    let gts = ref [] in
    let rec loop () =
      match (peek st).Token.token with
      | Token.Eof -> ()
      | _ -> (
        match parse_graph_type st errs with
        | gt ->
          gts := gt :: !gts;
          loop ()
        | exception Syntax e ->
          errs := e :: !errs;
          synchronize st;
          (* recovery may stop at an element of a broken graph type:
             skip ahead to the next CREATE *)
          let rec to_create () =
            match (peek st).Token.token with
            | Token.Eof -> ()
            | Token.Name n when String.equal (uc n) "CREATE" -> ()
            | _ ->
              advance st;
              to_create ()
          in
          to_create ();
          loop ())
    in
    loop ();
    let doc = List.rev !gts in
    if doc = [] && !errs = [] then
      ( [],
        [
          {
            Source.at = Source.span Source.start_pos Source.start_pos;
            message = "empty document";
          };
        ] )
    else (doc, Source.normalize_errors !errs)

let parse text : (Ast.document, Source.error) result =
  (* recovery is invisible on well-formed documents; on broken ones the
     plain view is its first (source-ordered) error *)
  match parse_with_recovery text with
  | doc, [] -> Ok doc
  | _, e :: _ -> Error e
