(* Lowering PG-Schema graph types onto the shared schema IR
   ({!Pg_schema.Schema}), mirroring the SDL frontend's [Of_ast]:

   - a node type becomes an object type named by its primary label;
     secondary labels become marker interfaces the object implements;
   - a property becomes an attribute field — mandatory lowers to a
     non-null type plus [@required] (DS5), [OPTIONAL] to a nullable
     type, [ARRAY] to a list type;
   - an edge type becomes a relationship field on its source object,
     named by the edge label; [OUT]/[IN] endpoint cardinalities lower to
     the DS-rule constraint rows ([@required], [@uniqueForTarget],
     [@requiredForTarget]) and to the target's list/non-null wrapping;
   - [OPEN] node types (every node type of a [LOOSE] graph type) get
     [@open], which exempts their nodes from the strong rule SS2 —
     lenient-per-type;
   - property types beyond the builtins ([DATE], ...) become custom
     scalar types.

   Diagnostics: PGS001 = syntax (from the parser), PGS002 = a document
   that does not lower, PGS003 = a construct dropped or approximated. *)

module Source = Pg_sdl.Source
module Schema = Pg_schema.Schema
module Wrapped = Pg_schema.Wrapped
module Consistency = Pg_schema.Consistency
module Sm = Map.Make (String)

type severity = Error | Warning

type diagnostic = { code : string; at : Source.span; severity : severity; message : string }

let to_diagnostic d =
  let severity =
    match d.severity with Error -> Pg_diag.Diag.Error | Warning -> Pg_diag.Diag.Warning
  in
  Pg_diag.Diag.make ~code:d.code ~severity ~span:d.at d.message

(* Syntax errors carry the PGS001 code (the PG-Schema counterpart of
   SDL001). *)
let syntax_diagnostic (e : Source.error) =
  Pg_diag.Diag.error ~code:"PGS001" ~span:e.Source.at e.Source.message

type ctx = { mutable diagnostics : diagnostic list }

let error ctx at fmt =
  Format.kasprintf
    (fun message ->
      ctx.diagnostics <- { code = "PGS002"; at; severity = Error; message } :: ctx.diagnostics)
    fmt

let warning ctx at fmt =
  Format.kasprintf
    (fun message ->
      ctx.diagnostics <- { code = "PGS003"; at; severity = Warning; message } :: ctx.diagnostics)
    fmt

(* Property type names: the PG-Schema spellings (case-insensitive) map
   onto the builtin scalars; anything else declares a custom scalar,
   case-preserved. *)
let base_scalar ty =
  match String.uppercase_ascii ty with
  | "STRING" -> `Builtin "String"
  | "INT" | "INTEGER" -> `Builtin "Int"
  | "FLOAT" | "DOUBLE" -> `Builtin "Float"
  | "BOOL" | "BOOLEAN" -> `Builtin "Boolean"
  | "ID" -> `Builtin "ID"
  | _ -> `Custom ty

let required_use = { Schema.du_name = "required"; du_args = [] }
let open_use = { Schema.du_name = "open"; du_args = [] }
let unique_tgt_use = { Schema.du_name = "uniqueForTarget"; du_args = [] }
let required_tgt_use = { Schema.du_name = "requiredForTarget"; du_args = [] }

let open_directive_def = { Schema.dd_args = []; dd_locations = [ Pg_ir.Values.Loc_object ] }

(* A property's wrapped type: [ARRAY] lowers to a list of non-null items
   (graph values are never null); mandatory lowers the outer wrapper to
   non-null. *)
let property_wrapped base (p : Ast.property) =
  if p.Ast.p_array then
    Wrapped.List { item = base; item_non_null = true; non_null = not p.Ast.p_optional }
  else if p.Ast.p_optional then Wrapped.Named base
  else Wrapped.Non_null base

(* Per-node-type working state, keyed by primary label. *)
type node_acc = {
  na_node : Ast.node_type;
  na_open : bool;
  mutable na_fields : (string * Schema.field) list;  (* reversed *)
}

let lower (doc : Ast.document) =
  let ctx = { diagnostics = [] } in
  let customs = ref Sm.empty in
  let note_custom ty at =
    match base_scalar ty with
    | `Builtin b -> b
    | `Custom c ->
      (match Sm.find_opt c !customs with
      | Some _ -> ()
      | None -> customs := Sm.add c at !customs);
      c
  in
  (* pass 1: node types — primaries, declared type names, secondaries *)
  let nodes : node_acc Sm.t ref = ref Sm.empty in
  let order = ref [] in
  let type_names = ref Sm.empty in
  let secondaries = ref Sm.empty in
  List.iter
    (fun (gt : Ast.graph_type) ->
      let loose = gt.Ast.gt_mode = Ast.Loose in
      List.iter
        (function
          | Ast.Edge_type _ -> ()
          | Ast.Node_type n -> (
            match n.Ast.n_labels with
            | [] -> ()
            | primary :: rest ->
              if Sm.mem primary !nodes then
                error ctx n.Ast.n_span "duplicate node type with primary label %S" primary
              else begin
                nodes :=
                  Sm.add primary
                    { na_node = n; na_open = n.Ast.n_open || loose; na_fields = [] }
                    !nodes;
                order := primary :: !order;
                (match n.Ast.n_name with
                | Some tn ->
                  if Sm.mem tn !type_names then
                    error ctx n.Ast.n_span "duplicate node type name %S" tn
                  else type_names := Sm.add tn primary !type_names
                | None -> ());
                List.iter
                  (fun s -> secondaries := Sm.add s n.Ast.n_span !secondaries)
                  rest
              end))
        gt.Ast.gt_elements)
    doc;
  Sm.iter
    (fun s at ->
      if Sm.mem s !nodes then
        error ctx at "label %S is used both as a primary and a secondary label" s)
    !secondaries;
  (* pass 2: properties become attribute fields *)
  Sm.iter
    (fun primary na ->
      List.iter
        (fun (p : Ast.property) ->
          if List.mem_assoc p.Ast.p_name na.na_fields then
            error ctx p.Ast.p_span "duplicate property %S on node type %S" p.Ast.p_name primary
          else begin
            let base = note_custom p.Ast.p_type p.Ast.p_span in
            let fd =
              {
                Schema.fd_type = property_wrapped base p;
                fd_args = [];
                fd_directives = (if p.Ast.p_optional then [] else [ required_use ]);
                fd_description = None;
              }
            in
            na.na_fields <- (p.Ast.p_name, fd) :: na.na_fields
          end)
        na.na_node.Ast.n_props)
    !nodes;
  (* pass 3: edge types become relationship fields on their source *)
  (* a declared type name shadows a primary label of the same spelling *)
  let resolve (ep : Ast.endpoint) =
    match Sm.find_opt ep.Ast.ep_ref !type_names with
    | Some primary -> Some primary
    | None ->
      if Sm.mem ep.Ast.ep_ref !nodes then Some ep.Ast.ep_ref
      else begin
        if Sm.mem ep.Ast.ep_ref !secondaries then
          error ctx ep.Ast.ep_span
            "endpoint reference %S is a secondary label; endpoints must reference a node type"
            ep.Ast.ep_ref
        else error ctx ep.Ast.ep_span "unknown endpoint reference %S" ep.Ast.ep_ref;
        None
      end
  in
  List.iter
    (fun (gt : Ast.graph_type) ->
      List.iter
        (function
          | Ast.Node_type _ -> ()
          | Ast.Edge_type e -> (
            match resolve e.Ast.e_src, resolve e.Ast.e_tgt with
            | Some src, Some tgt ->
              let na = Sm.find src !nodes in
              if e.Ast.e_open then
                warning ctx e.Ast.e_span
                  "OPEN on edge type %S is not supported and is ignored" e.Ast.e_label;
              if List.mem_assoc e.Ast.e_label na.na_fields then
                error ctx e.Ast.e_span
                  "duplicate field %S on node type %S (edge label collides)" e.Ast.e_label src
              else begin
                let out = Option.value e.Ast.e_out ~default:{ Ast.c_lo = 0; c_hi = None } in
                (match out with
                | { Ast.c_lo = 0 | 1; c_hi = Some 1 | None } -> ()
                | c ->
                  warning ctx e.Ast.e_span
                    "cardinality OUT %s of edge %S is approximated by %s"
                    (Ast.cardinality_to_string c) e.Ast.e_label
                    (Ast.cardinality_to_string
                       { c with Ast.c_lo = min 1 c.Ast.c_lo }));
                let required = out.Ast.c_lo >= 1 in
                let fd_type =
                  match out.Ast.c_hi with
                  | Some 1 -> if required then Wrapped.Non_null tgt else Wrapped.Named tgt
                  | _ -> Wrapped.List { item = tgt; item_non_null = true; non_null = required }
                in
                let in_dirs =
                  match e.Ast.e_in with
                  | None -> []
                  | Some c ->
                    (match c with
                    | { Ast.c_lo = 0 | 1; c_hi = Some 1 | None } -> ()
                    | c ->
                      warning ctx e.Ast.e_span
                        "cardinality IN %s of edge %S is approximated by %s"
                        (Ast.cardinality_to_string c) e.Ast.e_label
                        (Ast.cardinality_to_string { c with Ast.c_lo = min 1 c.Ast.c_lo }));
                    (if c.Ast.c_hi = Some 1 then [ unique_tgt_use ] else [])
                    @ if c.Ast.c_lo >= 1 then [ required_tgt_use ] else []
                in
                let args =
                  List.fold_left
                    (fun args (p : Ast.property) ->
                      if List.mem_assoc p.Ast.p_name args then begin
                        error ctx p.Ast.p_span "duplicate property %S on edge type %S"
                          p.Ast.p_name e.Ast.e_label;
                        args
                      end
                      else begin
                        let base = note_custom p.Ast.p_type p.Ast.p_span in
                        args
                        @ [
                            ( p.Ast.p_name,
                              {
                                Schema.arg_type = property_wrapped base p;
                                arg_directives = [];
                                arg_default = None;
                              } );
                          ]
                      end)
                    [] e.Ast.e_props
                in
                let fd =
                  {
                    Schema.fd_type;
                    fd_args = args;
                    fd_directives = (if required then [ required_use ] else []) @ in_dirs;
                    fd_description = None;
                  }
                in
                na.na_fields <- (e.Ast.e_label, fd) :: na.na_fields
              end
            | _ -> ()))
        gt.Ast.gt_elements)
    doc;
  (* custom scalar names must not collide with labels *)
  customs :=
    Sm.filter
      (fun c at ->
        if Sm.mem c !nodes || Sm.mem c !secondaries || Sm.mem c !type_names then begin
          error ctx at "property type %S is a node label, not a scalar type" c;
          false
        end
        else true)
      !customs;
  (* assembly *)
  let sch = ref Schema.empty in
  Sm.iter
    (fun c _at ->
      sch :=
        Schema.add_scalar !sch c
          { Schema.sc_builtin = false; sc_directives = []; sc_description = None })
    !customs;
  Sm.iter
    (fun s _at ->
      sch :=
        Schema.add_interface !sch s
          { Schema.it_fields = []; it_directives = []; it_description = None })
    !secondaries;
  let any_open = Sm.exists (fun _ na -> na.na_open) !nodes in
  if any_open then sch := Schema.add_directive_def !sch "open" open_directive_def;
  List.iter
    (fun primary ->
      let na = Sm.find primary !nodes in
      let secondary =
        match na.na_node.Ast.n_labels with _ :: rest -> rest | [] -> []
      in
      sch :=
        Schema.add_object !sch primary
          {
            Schema.ot_interfaces = secondary;
            ot_fields = List.rev na.na_fields;
            ot_directives = (if na.na_open then [ open_use ] else []);
            ot_description = None;
          })
    (List.rev !order);
  let diagnostics = List.rev ctx.diagnostics in
  let errors = List.filter (fun d -> d.severity = Error) diagnostics in
  if errors <> [] then Result.Error diagnostics
  else Ok (Schema.rebuild_implementations !sch, diagnostics)

(* The structured front door, mirroring [Pg_schema.Of_ast.parse_full]:
   every stage's findings as unified diagnostics. *)
let parse_full ?(consistency = true) text =
  match Parser.parse_with_recovery text with
  | _, (_ :: _ as errors) -> Result.Error (List.map syntax_diagnostic errors)
  | doc, [] -> (
    match lower doc with
    | Result.Error diagnostics -> Result.Error (List.map to_diagnostic diagnostics)
    | Ok (sch, warnings) ->
      if not consistency then Ok (sch, List.map to_diagnostic warnings)
      else (
        match Consistency.check sch with
        | [] -> Ok (sch, List.map to_diagnostic warnings)
        | issues -> Result.Error (List.map Consistency.to_diagnostic issues)))

let parse_with ~check_consistency text =
  match parse_full ~consistency:check_consistency text with
  | Ok (sch, _warnings) -> Ok sch
  | Result.Error diagnostics ->
    Result.Error (String.concat "\n" (List.map Pg_diag.Diag.to_text diagnostics))

let parse text = parse_with ~check_consistency:true text
let parse_lenient text = parse_with ~check_consistency:false text

let parse_exn text =
  match parse text with Ok sch -> sch | Result.Error msg -> invalid_arg msg
