(* Benchmark harness: regenerates every table/figure-shaped artifact of the
   paper (see the per-experiment index in DESIGN.md and the recorded runs
   in EXPERIMENTS.md).

   Each experiment prints a table; fixed-size workloads additionally run
   as Bechamel micro-benchmarks (one Test.make per experiment, collected
   in one run at the end).

   Run with:  dune exec bench/main.exe
   (set BENCH_FAST=1 to shrink the series for quick checks) *)

module GP = Graphql_pg
open Bechamel
open Toolkit

let fast = Sys.getenv_opt "BENCH_FAST" <> None

let section title =
  Printf.printf "\n=== %s ===\n%!" title

(* median-of-k wall-clock milliseconds.

   This must be a wall clock, not [Sys.time]: [Sys.time] reports process
   CPU time, which (a) hides GC pauses and (b) *sums* across domains, so
   it would report a perfectly-scaling multicore engine as a slowdown.
   [Unix.gettimeofday] measures what a caller actually waits. *)
let time_ms ?(repeat = 3) f =
  let runs =
    List.init repeat (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  List.nth (List.sort compare runs) (repeat / 2)

(* ------------------------------------------------------------------ *)
(* Machine-readable artifacts: experiments append rows with [record];
   [write_artifacts] dumps one BENCH_<exp>.json per experiment into
   $BENCH_JSON_DIR (default: the working directory) so CI and the
   EXPERIMENTS.md records consume numbers instead of scraping tables.   *)

let artifacts : (string, GP.Json.t list ref) Hashtbl.t = Hashtbl.create 8

let record exp fields =
  let rows =
    match Hashtbl.find_opt artifacts exp with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add artifacts exp r;
      r
  in
  rows := GP.Json.Assoc fields :: !rows

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_artifacts () =
  let dir = Option.value (Sys.getenv_opt "BENCH_JSON_DIR") ~default:"." in
  mkdir_p dir;
  let exps = Hashtbl.fold (fun exp rows acc -> (exp, rows) :: acc) artifacts [] in
  List.iter
    (fun (exp, rows) ->
      let doc =
        GP.Json.Assoc
          [
            ("experiment", GP.Json.String exp);
            ("fast", GP.Json.Bool fast);
            ("rows", GP.Json.List (List.rev !rows));
          ]
      in
      let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" exp) in
      (* durable temp+fsync+rename: a crash mid-run never truncates a
         previously published BENCH_*.json *)
      GP.Durable.write_file path [ GP.Json.to_string ~indent:true doc; "\n" ];
      Printf.printf "  artifact: %s\n%!" path)
    (List.sort compare exps)

(* ------------------------------------------------------------------ *)
(* E3 — the cardinality table of Section 3.3, executed                  *)

let cardinality_table () =
  section "E3: Section 3.3 cardinality table (accept / reject probes)";
  let variant body =
    GP.schema_of_string_exn (Printf.sprintf "type A { rel: %s }\ntype B {\n}\n" body)
  in
  let probe sch ~sources ~targets ~edges =
    let b = GP.Builder.create () in
    for i = 1 to sources do
      ignore (GP.Builder.node b (Printf.sprintf "a%d" i) ~label:"A" ())
    done;
    for j = 1 to targets do
      ignore (GP.Builder.node b (Printf.sprintf "b%d" j) ~label:"B" ())
    done;
    List.iter
      (fun (i, j) ->
        ignore
          (GP.Builder.edge b (Printf.sprintf "a%d" i) (Printf.sprintf "b%d" j) ~label:"rel" ()))
      edges;
    GP.conforms sch (GP.Builder.graph b)
  in
  Printf.printf "  %-5s  %-26s  %-14s  %-14s\n" "card" "declaration" "1 src->2 tgts"
    "2 srcs->1 tgt";
  List.iter
    (fun (name, body) ->
      let sch = variant body in
      Printf.printf "  %-5s  %-26s  %-14b  %-14b\n" name ("rel: " ^ body)
        (probe sch ~sources:1 ~targets:2 ~edges:[ (1, 1); (1, 2) ])
        (probe sch ~sources:2 ~targets:1 ~edges:[ (1, 1); (2, 1) ]))
    [
      ("1:1", "B @uniqueForTarget");
      ("1:N", "B");
      ("N:1", "[B] @uniqueForTarget");
      ("N:M", "[B]");
    ]

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 1: validation scaling, naive vs indexed engine          *)

let validation_scaling () =
  section "E7: Theorem 1 — validation time vs graph size (social workload)";
  let sch = GP.Social.schema () in
  Printf.printf "  %-8s %-8s %-8s %12s %12s\n" "persons" "nodes" "edges" "naive (ms)"
    "indexed (ms)";
  let naive_sizes = if fast then [ 20; 50 ] else [ 20; 50; 100; 200; 400 ] in
  let indexed_sizes = if fast then [ 100; 1000 ] else [ 100; 400; 1000; 4000; 10000; 20000 ] in
  let run engine persons =
    let g = GP.Social.generate ~persons () in
    let ms = time_ms (fun () -> GP.Validate.check ~engine sch g) in
    (GP.Property_graph.node_count g, GP.Property_graph.edge_count g, ms)
  in
  List.iter
    (fun persons ->
      let nodes, edges, naive_ms = run GP.Validate.Naive persons in
      let _, _, indexed_ms = run GP.Validate.Indexed persons in
      record "E7"
        [
          ("persons", GP.Json.Int persons);
          ("nodes", GP.Json.Int nodes);
          ("edges", GP.Json.Int edges);
          ("naive_ms", GP.Json.Float naive_ms);
          ("indexed_ms", GP.Json.Float indexed_ms);
        ];
      Printf.printf "  %-8d %-8d %-8d %12.2f %12.2f\n%!" persons nodes edges naive_ms
        indexed_ms)
    naive_sizes;
  List.iter
    (fun persons ->
      let nodes, edges, indexed_ms = run GP.Validate.Indexed persons in
      record "E7"
        [
          ("persons", GP.Json.Int persons);
          ("nodes", GP.Json.Int nodes);
          ("edges", GP.Json.Int edges);
          ("indexed_ms", GP.Json.Float indexed_ms);
        ];
      Printf.printf "  %-8d %-8d %-8d %12s %12.2f\n%!" persons nodes edges "-" indexed_ms)
    indexed_sizes;
  (* growth exponents: fit t = c * n^k on the first and last points *)
  let exponent run_engine sizes =
    match sizes with
    | a :: _ :: _ ->
      let b = List.nth sizes (List.length sizes - 1) in
      let _, _, ta = run run_engine a and _, _, tb = run run_engine b in
      log (tb /. ta) /. log (float_of_int b /. float_of_int a)
    | _ -> nan
  in
  Printf.printf "  observed growth exponent: naive ~ n^%.2f, indexed ~ n^%.2f\n"
    (exponent GP.Validate.Naive naive_sizes)
    (exponent GP.Validate.Indexed indexed_sizes);
  Printf.printf
    "  (paper: data complexity O(n^2) for the direct first-order algorithm;\n\
    \   the indexed engine is near-linear)\n"

(* ------------------------------------------------------------------ *)
(* E15 — the multicore engine: naive vs indexed vs parallel, scaling in
   graph size and in domain count (wall clock — see time_ms)            *)

let parallel_scaling () =
  section "E15: multicore validation — naive vs indexed vs parallel (wall clock)";
  let sch = GP.Social.schema () in
  let host_domains = Domain.recommended_domain_count () in
  Printf.printf "  host: %d recommended domain(s)\n" host_domains;
  (* graph-size scaling at a fixed domain count *)
  let sizes = if fast then [ 200; 1000 ] else [ 1000; 4000; 10000; 20000 ] in
  let fixed_domains = max 4 host_domains in
  Printf.printf "  %-8s %-8s %-8s %12s %12s %12s %9s\n" "persons" "nodes" "edges"
    "naive (ms)" "indexed (ms)"
    (Printf.sprintf "par-%d (ms)" fixed_domains)
    "idx/par";
  List.iter
    (fun persons ->
      let g = GP.Social.generate ~persons () in
      let nodes = GP.Property_graph.node_count g
      and edges = GP.Property_graph.edge_count g in
      let naive_cutoff = if fast then 200 else 1000 in
      let naive_ms =
        if persons <= naive_cutoff then
          Some (time_ms ~repeat:1 (fun () -> GP.Validate.check ~engine:GP.Validate.Naive sch g))
        else None
      in
      let indexed_ms =
        time_ms (fun () -> GP.Validate.check ~engine:GP.Validate.Indexed sch g)
      in
      let par_ms =
        time_ms (fun () ->
            GP.Validate.check ~engine:GP.Validate.Parallel ~domains:fixed_domains sch g)
      in
      record "E15"
        ([
           ("persons", GP.Json.Int persons);
           ("nodes", GP.Json.Int nodes);
           ("edges", GP.Json.Int edges);
           ("indexed_ms", GP.Json.Float indexed_ms);
           ("parallel_ms", GP.Json.Float par_ms);
           ("domains", GP.Json.Int fixed_domains);
         ]
        @ match naive_ms with Some ms -> [ ("naive_ms", GP.Json.Float ms) ] | None -> []);
      Printf.printf "  %-8d %-8d %-8d %12s %12.2f %12.2f %8.2fx\n%!" persons nodes edges
        (match naive_ms with Some ms -> Printf.sprintf "%.2f" ms | None -> "-")
        indexed_ms par_ms (indexed_ms /. par_ms))
    sizes;
  (* domain-count scaling at the largest size *)
  let persons = List.fold_left max 0 sizes in
  let g = GP.Social.generate ~persons () in
  let indexed_ms =
    time_ms (fun () -> GP.Validate.check ~engine:GP.Validate.Indexed sch g)
  in
  Printf.printf "  domain sweep at %d persons (indexed baseline %.2f ms):\n" persons
    indexed_ms;
  let counts = if fast then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  List.iter
    (fun domains ->
      let ms =
        time_ms (fun () ->
            GP.Validate.check ~engine:GP.Validate.Parallel ~domains sch g)
      in
      Printf.printf "  %8d domain(s) %12.2f ms %8.2fx vs indexed\n%!" domains ms
        (indexed_ms /. ms))
    counts;
  if host_domains < 4 then
    Printf.printf
      "  (host has %d core(s); domain counts above it measure scheduling overhead,\n\
      \   not speedup — rerun on a multicore host for the scaling curve)\n"
      host_domains

(* ------------------------------------------------------------------ *)
(* E19 — the sharded engine: the E15 domain sweep re-run over explicit
   partitions, a shard sweep at a fixed domain count, and the streaming
   out-of-core pipeline over a mapped snapshot.  Every configuration's
   report is asserted byte-identical to the indexed engine's.            *)

let sharded_scaling () =
  section "E19: sharded validation — indexed vs parallel vs sharded (wall clock)";
  let sch = GP.Social.schema () in
  let host_domains = Domain.recommended_domain_count () in
  Printf.printf "  host: %d recommended domain(s)\n" host_domains;
  let persons = if fast then 1000 else 20000 in
  let g = GP.Social.generate ~persons () in
  let nodes = GP.Property_graph.node_count g
  and edges = GP.Property_graph.edge_count g in
  let rendered report =
    List.map GP.Violation.to_string report.GP.Validate.violations
  in
  let indexed_report = GP.Validate.check ~engine:GP.Validate.Indexed sch g in
  let baseline = rendered indexed_report in
  let assert_identical what report =
    if not (List.equal String.equal baseline (rendered report)) then
      failwith (Printf.sprintf "E19: %s diverged from the indexed report" what)
  in
  let indexed_ms =
    time_ms (fun () -> GP.Validate.check ~engine:GP.Validate.Indexed sch g)
  in
  Printf.printf "  %d persons (%d nodes, %d edges); indexed baseline %.2f ms\n" persons
    nodes edges indexed_ms;
  (* the E15 domain sweep, sharded vs parallel, shards = domains *)
  let counts = if fast then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  Printf.printf "  %-22s %12s %12s %9s\n" "configuration" "par (ms)" "shard (ms)"
    "idx/shard";
  List.iter
    (fun domains ->
      let par_ms =
        time_ms (fun () ->
            GP.Validate.check ~engine:GP.Validate.Parallel ~domains sch g)
      in
      let sharded_ms =
        time_ms (fun () ->
            GP.Validate.check ~engine:GP.Validate.Sharded ~domains sch g)
      in
      assert_identical
        (Printf.sprintf "sharded domains=%d" domains)
        (GP.Validate.check ~engine:GP.Validate.Sharded ~domains sch g);
      record "E19"
        [
          ("series", GP.Json.String "domain_sweep");
          ("persons", GP.Json.Int persons);
          ("nodes", GP.Json.Int nodes);
          ("edges", GP.Json.Int edges);
          ("domains", GP.Json.Int domains);
          ("shards", GP.Json.Int domains);
          ("indexed_ms", GP.Json.Float indexed_ms);
          ("parallel_ms", GP.Json.Float par_ms);
          ("sharded_ms", GP.Json.Float sharded_ms);
        ];
      Printf.printf "  %-22s %12.2f %12.2f %8.2fx\n%!"
        (Printf.sprintf "domains=shards=%d" domains)
        par_ms sharded_ms (indexed_ms /. sharded_ms))
    counts;
  (* shard sweep at a fixed domain count: more shards than domains bounds
     the per-task working set; the report must not change *)
  let shard_counts = if fast then [ 1; 3; 8 ] else [ 1; 2; 4; 8; 16 ] in
  List.iter
    (fun shards ->
      let ms =
        time_ms (fun () ->
            GP.Validate.check ~engine:GP.Validate.Sharded ~domains:host_domains ~shards
              sch g)
      in
      assert_identical
        (Printf.sprintf "sharded shards=%d" shards)
        (GP.Validate.check ~engine:GP.Validate.Sharded ~domains:host_domains ~shards sch g);
      record "E19"
        [
          ("series", GP.Json.String "shard_sweep");
          ("persons", GP.Json.Int persons);
          ("domains", GP.Json.Int host_domains);
          ("shards", GP.Json.Int shards);
          ("indexed_ms", GP.Json.Float indexed_ms);
          ("sharded_ms", GP.Json.Float ms);
        ];
      Printf.printf "  %-22s %12s %12.2f %8.2fx\n%!"
        (Printf.sprintf "domains=%d shards=%d" host_domains shards)
        "" ms (indexed_ms /. ms))
    shard_counts;
  (* the streaming out-of-core pipeline over a mapped snapshot *)
  let plan = GP.Validate.compile sch in
  let snap = GP.Snapshot.build (GP.Plan.symtab plan) g in
  let path = Filename.temp_file "gpgs_e19" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match GP.Snapshot_io.write (GP.Plan.symtab plan) snap path with
      | Ok () -> ()
      | Error e -> failwith ("E19: snapshot write failed: " ^ e.GP.Snapshot_io.message));
      List.iter
        (fun shards ->
          let ms =
            time_ms (fun () ->
                match GP.Snapshot_io.open_mapped (GP.Plan.symtab plan) path with
                | Error e -> failwith ("E19: open_mapped: " ^ e.GP.Snapshot_io.message)
                | Ok md ->
                  Fun.protect
                    ~finally:(fun () -> GP.Snapshot_io.close_mapped md)
                    (fun () ->
                      match GP.Validate.check_mapped ~shards plan md with
                      | Ok report -> assert_identical "mapped stream" report
                      | Error e ->
                        failwith ("E19: check_mapped: " ^ e.GP.Snapshot_io.message)))
          in
          record "E19"
            [
              ("series", GP.Json.String "mapped_stream");
              ("persons", GP.Json.Int persons);
              ("shards", GP.Json.Int shards);
              ("indexed_ms", GP.Json.Float indexed_ms);
              ("stream_ms", GP.Json.Float ms);
            ];
          Printf.printf "  %-22s %12s %12.2f %8.2fx  (open+validate+close)\n%!"
            (Printf.sprintf "mapped shards=%d" shards)
            "" ms (indexed_ms /. ms))
        shard_counts);
  Printf.printf "  reports byte-identical to indexed across every configuration\n"

(* ------------------------------------------------------------------ *)
(* E16 — the compiled pipeline: schema plan compiled once, snapshot +
   integer kernels per run.  Isolates compile cost from per-run cost and
   compares the fused single-pass engine with the per-rule slicing one.  *)

let compiled_pipeline () =
  section "E16: compiled validation — plan reuse across runs (wall clock)";
  let sch = GP.Social.schema () in
  let plan = GP.Validate.compile sch in
  let compile_ms = time_ms (fun () -> GP.Validate.compile sch) in
  Printf.printf "  Plan.compile (social schema): %.3f ms, %d interned symbols\n" compile_ms
    (GP.Symtab.size (GP.Plan.symtab plan));
  let sizes = if fast then [ 200; 1000 ] else [ 1000; 4000; 10000; 20000 ] in
  Printf.printf "  %-8s %-8s %-8s %12s %12s %12s %12s\n" "persons" "nodes" "edges"
    "linear (ms)" "indexed (ms)" "par (ms)" "snapshot";
  List.iter
    (fun persons ->
      let g = GP.Social.generate ~persons () in
      let nodes = GP.Property_graph.node_count g
      and edges = GP.Property_graph.edge_count g in
      let run engine =
        time_ms (fun () -> GP.Validate.check_compiled ~engine plan g)
      in
      let snapshot_ms =
        time_ms (fun () -> GP.Snapshot.build (GP.Plan.symtab plan) g)
      in
      let linear_ms = run GP.Validate.Linear in
      let indexed_ms = run GP.Validate.Indexed in
      let par_ms = run GP.Validate.Parallel in
      record "E16"
        [
          ("persons", GP.Json.Int persons);
          ("nodes", GP.Json.Int nodes);
          ("edges", GP.Json.Int edges);
          ("linear_ms", GP.Json.Float linear_ms);
          ("indexed_ms", GP.Json.Float indexed_ms);
          ("parallel_ms", GP.Json.Float par_ms);
          ("snapshot_build_ms", GP.Json.Float snapshot_ms);
        ];
      Printf.printf "  %-8d %-8d %-8d %12.2f %12.2f %12.2f %9.2f ms\n%!" persons nodes
        edges linear_ms indexed_ms par_ms snapshot_ms)
    sizes;
  Printf.printf
    "  (check_compiled reuses the schema plan; \"snapshot\" is the per-run cost of\n\
    \   freezing the graph into the CSR view, included in the engine columns)\n"

(* ------------------------------------------------------------------ *)
(* E17 — streaming vs slurp ingestion: Pgf.load reads from a fixed
   64 KiB chunked buffer; the historical path slurped the whole file
   into one string first.  Peak RSS is measured per strategy in a
   fresh child process — VmHWM is a per-process high-water mark, so an
   in-process reading after the earlier experiments would only show
   their peak, and Unix.fork is unavailable once E15 has spawned
   domains.  The bench re-executes itself with E17_LOAD=mode:path set;
   the child performs just that one load and prints its VmHWM growth.  *)

let vm_hwm_kb () =
  let ic = open_in "/proc/self/status" in
  let rec go acc =
    match input_line ic with
    | line ->
      let acc =
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" (fun kb -> Some kb)
        else acc
      in
      go acc
    | exception End_of_file ->
      close_in ic;
      acc
  in
  go None

let e17_slurp path =
  (* the pre-streaming loader: whole file into one string, then parse *)
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match GP.Pgf.parse text with Ok g -> g | Error _ -> failwith "parse"

let e17_stream path =
  match GP.Pgf.load path with Ok g -> g | Error _ -> failwith "load"

let e17_child spec =
  let mode, path =
    match String.index_opt spec ':' with
    | Some i -> (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
    | None -> failwith "E17_LOAD: expected mode:path"
  in
  let hwm () = match vm_hwm_kb () with Some kb -> kb | None -> 0 in
  let before = hwm () in
  (match mode with
  | "stream" -> ignore (Sys.opaque_identity (e17_stream path))
  | "slurp" -> ignore (Sys.opaque_identity (e17_slurp path))
  | "reparse" ->
    (* E18: the cold open — parse the PGF text and freeze the CSR *)
    let g = e17_stream path in
    ignore (Sys.opaque_identity (GP.Snapshot.build (GP.Symtab.create ()) g))
  | "mmap" ->
    (* E18: reopen a persisted snapshot; the int columns stay mapped *)
    (match GP.Snapshot_io.load (GP.Symtab.create ()) path with
    | Ok snap -> ignore (Sys.opaque_identity snap)
    | Error e -> failwith e.GP.Snapshot_io.message)
  | _ -> failwith "E17_LOAD: unknown mode");
  Printf.printf "%d\n" (hwm () - before);
  Stdlib.exit 0

let () = match Sys.getenv_opt "E17_LOAD" with Some spec -> e17_child spec | None -> ()

let rss_delta_kb mode path =
  let out = Filename.temp_file "gpgs_e17_rss" ".kb" in
  let cmd =
    Printf.sprintf "E17_LOAD=%s %s > %s"
      (Filename.quote (mode ^ ":" ^ path))
      (Filename.quote Sys.executable_name) (Filename.quote out)
  in
  let rc = Sys.command cmd in
  let ic = open_in out in
  let kb = match input_line ic with s -> int_of_string s | exception End_of_file -> -1 in
  close_in ic;
  Sys.remove out;
  if rc <> 0 then -1 else kb

let streaming_ingestion () =
  section "E17: streaming vs slurp PGF load (wall clock, allocation, peak RSS)";
  let persons = if fast then 500 else 20000 in
  let g = GP.Social.generate ~persons () in
  let path = Filename.temp_file "gpgs_e17" ".pgf" in
  GP.Pgf.save path g;
  let bytes = (Unix.stat path).Unix.st_size in
  let slurp () = e17_slurp path in
  let stream () = e17_stream path in
  let alloc f =
    let a0 = Gc.allocated_bytes () in
    ignore (Sys.opaque_identity (f ()));
    (Gc.allocated_bytes () -. a0) /. 1048576.0
  in
  Printf.printf "  input: %d persons, %.1f MB of PGF text\n" persons
    (float_of_int bytes /. 1048576.0);
  Printf.printf "  %-8s %12s %14s %16s\n" "loader" "load (ms)" "alloc (MB)" "peak RSS (KiB)";
  List.iter
    (fun (name, f) ->
      let ms = time_ms f and mb = alloc f and rss = rss_delta_kb name path in
      record "E17"
        [
          ("loader", GP.Json.String name);
          ("persons", GP.Json.Int persons);
          ("pgf_bytes", GP.Json.Int bytes);
          ("load_ms", GP.Json.Float ms);
          ("alloc_mb", GP.Json.Float mb);
          ("peak_rss_kib", GP.Json.Int rss);
        ];
      Printf.printf "  %-8s %12.2f %14.1f %16d\n%!" name ms mb rss)
    [ ("stream", stream); ("slurp", slurp) ];
  Sys.remove path;
  Printf.printf
    "  (\"stream\" is Pgf.load — a fold over 64 KiB chunks; \"slurp\" additionally\n\
    \   materializes the whole file and its line list; RSS is the child-process\n\
    \   VmHWM delta for one load in isolation)\n"

(* ------------------------------------------------------------------ *)
(* E18 — persisted snapshots: cold PGF reparse vs mmap reopen.  "Open"
   is everything between a cold start and a validatable snapshot —
   reparse = Pgf.load + Snapshot.build, mmap = Snapshot_io.load (header
   + checksum + symtab + props, int columns mapped).  Both open into a
   freshly compiled plan, so each run pays the full symbol-remap cost;
   peak RSS per strategy is a child-process VmHWM delta (see E17).      *)

let snapshot_reopen () =
  section "E18: cold reparse vs mmap snapshot reopen (wall clock, peak RSS)";
  let persons = if fast then 500 else 20000 in
  let sch = GP.Social.schema () in
  let g = GP.Social.generate ~persons () in
  let pgf_path = Filename.temp_file "gpgs_e18" ".pgf" in
  let snap_path = Filename.temp_file "gpgs_e18" ".snap" in
  GP.Pgf.save pgf_path g;
  let st = GP.Symtab.create () in
  (match GP.Snapshot_io.write st (GP.Snapshot.build st g) snap_path with
  | Ok () -> ()
  | Error e -> failwith e.GP.Snapshot_io.message);
  let pgf_bytes = (Unix.stat pgf_path).Unix.st_size in
  let snap_bytes = (Unix.stat snap_path).Unix.st_size in
  (* The plan is compiled once per schema in any serving flow, so it sits
     outside the timed region: "open" is the per-graph cost only. *)
  let reparse_plan = GP.Validate.compile sch in
  let mmap_plan = GP.Validate.compile sch in
  let open_reparse () =
    let g = match GP.Pgf.load pgf_path with Ok g -> g | Error _ -> failwith "parse" in
    (reparse_plan, GP.Snapshot.build (GP.Plan.symtab reparse_plan) g)
  in
  let open_mmap () =
    match GP.Snapshot_io.load (GP.Plan.symtab mmap_plan) snap_path with
    | Ok snap -> (mmap_plan, snap)
    | Error e -> failwith e.GP.Snapshot_io.message
  in
  let validate (plan, snap) =
    GP.Validate.check_snapshot ~engine:GP.Validate.Indexed plan snap
  in
  let report_strings o =
    List.map GP.Violation.to_string (validate o).GP.Validate.violations
  in
  let identical = report_strings (open_reparse ()) = report_strings (open_mmap ()) in
  Printf.printf "  input: %d persons, %.1f MB PGF, %.1f MB snapshot\n" persons
    (float_of_int pgf_bytes /. 1048576.0)
    (float_of_int snap_bytes /. 1048576.0);
  Printf.printf "  %-8s %12s %20s %16s\n" "path" "open (ms)" "open+validate (ms)"
    "peak RSS (KiB)";
  let measure name opener rss_mode rss_path =
    let open_ms = time_ms (fun () -> opener ()) in
    let total_ms = time_ms (fun () -> validate (opener ())) in
    let rss = rss_delta_kb rss_mode rss_path in
    record "E18"
      [
        ("path", GP.Json.String name);
        ("persons", GP.Json.Int persons);
        ("pgf_bytes", GP.Json.Int pgf_bytes);
        ("snapshot_bytes", GP.Json.Int snap_bytes);
        ("open_ms", GP.Json.Float open_ms);
        ("open_validate_ms", GP.Json.Float total_ms);
        ("peak_rss_kib", GP.Json.Int rss);
      ];
    Printf.printf "  %-8s %12.2f %20.2f %16d\n%!" name open_ms total_ms rss;
    (open_ms, total_ms)
  in
  let rep_open, rep_total = measure "reparse" open_reparse "reparse" pgf_path in
  let mm_open, mm_total = measure "mmap" open_mmap "mmap" snap_path in
  record "E18"
    [
      ("path", GP.Json.String "summary");
      ("open_speedup", GP.Json.Float (rep_open /. mm_open));
      ("open_validate_speedup", GP.Json.Float (rep_total /. mm_total));
      ("reports_identical", GP.Json.Bool identical);
    ];
  Printf.printf "  speedup: open %.1fx, open+validate %.1fx; reports identical: %b\n"
    (rep_open /. mm_open) (rep_total /. mm_total) identical;
  Sys.remove pgf_path;
  Sys.remove snap_path

(* ------------------------------------------------------------------ *)
(* E20 — the validation daemon (gpgs serve): client-storm throughput
   over a unix socket.  The plan is compiled once on the first request
   and served from the content-addressed cache afterwards, so the sweep
   measures the steady-state request rate of the worker pool, not
   schema compilation.                                                  *)

let serve_storm () =
  section "E20: validation service — client storm over a unix socket";
  let write_file path text =
    let oc = open_out_bin path in
    output_string oc text;
    close_out oc
  in
  let persons = if fast then 50 else 500 in
  let workers = 4 in
  let sch_path = Filename.temp_file "gpgs_e20" ".graphql" in
  let pgf_path = Filename.temp_file "gpgs_e20" ".pgf" in
  write_file sch_path GP.Social.schema_text;
  write_file pgf_path (GP.Pgf.print (GP.Social.generate ~persons ()));
  let sock = Filename.temp_file "gpgs_e20" ".sock" in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let service = Pg_server.Service.create () in
  let config =
    {
      (Pg_server.Server.default_config (Pg_server.Server.Unix_socket sock)) with
      Pg_server.Server.workers;
      max_pending = 64;
    }
  in
  let daemon =
    Domain.spawn (fun () ->
        Pg_server.Server.run ~stop
          ~on_ready:(fun _ -> Atomic.set ready true)
          config service)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.01
  done;
  let request =
    GP.Json.to_string
      (GP.Json.Assoc
         [
           ("op", GP.Json.String "validate");
           ("schema", GP.Json.String sch_path);
           ("graph", GP.Json.String pgf_path);
         ])
    ^ "\n"
  in
  (* One connection per client; strictly serial request/response, so a
     response is fully drained (up to its newline) before the next send. *)
  let client n () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    let req = Bytes.of_string request in
    let chunk = Bytes.create 65536 in
    let served = ref 0 in
    for _ = 1 to n do
      let rec send pos =
        if pos < Bytes.length req then send (pos + Unix.write fd req pos (Bytes.length req - pos))
      in
      send 0;
      let rec drain () =
        let r = Unix.read fd chunk 0 (Bytes.length chunk) in
        if r = 0 then failwith "E20: server closed the connection"
        else if not (Bytes.exists (fun c -> c = '\n') (Bytes.sub chunk 0 r)) then drain ()
      in
      drain ();
      incr served
    done;
    Unix.close fd;
    !served
  in
  (* warm the plan cache so the sweep measures the served steady state *)
  ignore (client 1 ());
  let counts = if fast then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let per_client = if fast then 20 else 100 in
  Printf.printf "  %d persons per graph, %d workers\n" persons workers;
  Printf.printf "  %-8s %10s %12s %10s\n" "clients" "requests" "wall (ms)" "req/s";
  List.iter
    (fun clients ->
      let t0 = Unix.gettimeofday () in
      let ds = List.init clients (fun _ -> Domain.spawn (fun () -> client per_client ())) in
      let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 ds in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let rps = float_of_int total /. (wall_ms /. 1000.) in
      Printf.printf "  %-8d %10d %12.1f %10.0f\n" clients total wall_ms rps;
      let cs = Pg_server.Service.plan_stats service in
      record "E20"
        [
          ("series", GP.Json.String "client_sweep");
          ("persons", GP.Json.Int persons);
          ("workers", GP.Json.Int workers);
          ("clients", GP.Json.Int clients);
          ("requests", GP.Json.Int total);
          ("wall_ms", GP.Json.Float wall_ms);
          ("requests_per_sec", GP.Json.Float rps);
          ("plan_cache_hits", GP.Json.Int cs.Pg_server.Cache.hits);
          ("plan_cache_misses", GP.Json.Int cs.Pg_server.Cache.misses);
        ])
    counts;
  Atomic.set stop true;
  Domain.join daemon;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ sch_path; pgf_path; sock ]

(* ------------------------------------------------------------------ *)
(* E21 — schema-frontend compile cost: the same constraint set written
   in GraphQL SDL and in PG-Schema, parsed+lowered through each front
   end onto the shared IR, plus the (frontend-independent) plan
   compile.  The PG-Schema document is generated synthetically at each
   size; its SDL twin is the [To_sdl] rendering of the lowered IR, so
   both texts express byte-for-byte the same schema by construction
   (asserted via a second lowering round trip).                        *)

let frontend_compile () =
  section "E21: schema-frontend compile cost — SDL vs PG-Schema (same IR)";
  let pgs_text n_types =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "CREATE GRAPH TYPE Generated STRICT {\n";
    for i = 0 to n_types - 1 do
      Buffer.add_string buf
        (Printf.sprintf
           "  (T%d { id STRING, rank INT, OPTIONAL note STRING, score FLOAT, OPTIONAL tags \
            STRING ARRAY, flag BOOL }),\n"
           i)
    done;
    for i = 0 to n_types - 1 do
      let tgt = (i + 1) mod n_types in
      Buffer.add_string buf
        (Printf.sprintf "  (:T%d)-[next%d { OPTIONAL weight FLOAT }]->(:T%d) OUT 1..1 IN 0..1,\n" i
           i tgt);
      Buffer.add_string buf
        (Printf.sprintf "  (:T%d)-[fan%d]->(:T%d) OUT 0..* IN 1..*,\n" i i tgt)
    done;
    Buffer.add_string buf "}\n";
    Buffer.contents buf
  in
  let sizes = if fast then [ 8; 32 ] else [ 8; 32; 128; 512 ] in
  Printf.printf "  %-6s %-10s %-10s %12s %12s %12s %6s\n" "types" "sdl (B)" "pgs (B)"
    "sdl (ms)" "pgs (ms)" "plan (ms)" "same";
  List.iter
    (fun n_types ->
      let pgs = pgs_text n_types in
      let sch =
        match GP.Frontend.parse_full GP.Frontend.Pgschema pgs with
        | Ok (sch, _) -> sch
        | Error _ -> failwith "E21: generated PG-Schema document failed to lower"
      in
      let sdl = GP.To_sdl.to_string sch in
      let parse lang text =
        match GP.Frontend.parse_full lang text with
        | Ok (sch, _) -> sch
        | Error _ -> failwith "E21: frontend rejected its own rendering"
      in
      (* both texts land on the same IR: compare their SDL renderings *)
      let identical =
        GP.To_sdl.to_string (parse GP.Frontend.Sdl sdl)
        = GP.To_sdl.to_string (parse GP.Frontend.Pgschema pgs)
      in
      let sdl_ms = time_ms (fun () -> parse GP.Frontend.Sdl sdl) in
      let pgs_ms = time_ms (fun () -> parse GP.Frontend.Pgschema pgs) in
      let plan_ms = time_ms (fun () -> GP.Validate.compile sch) in
      record "E21"
        [
          ("node_types", GP.Json.Int n_types);
          ("sdl_bytes", GP.Json.Int (String.length sdl));
          ("pgs_bytes", GP.Json.Int (String.length pgs));
          ("sdl_lower_ms", GP.Json.Float sdl_ms);
          ("pgs_lower_ms", GP.Json.Float pgs_ms);
          ("plan_compile_ms", GP.Json.Float plan_ms);
          ("identical_ir", GP.Json.Bool identical);
        ];
      Printf.printf "  %-6d %-10d %-10d %12.3f %12.3f %12.3f %6b\n%!" n_types
        (String.length sdl) (String.length pgs) sdl_ms pgs_ms plan_ms identical)
    sizes;
  Printf.printf
    "  (sdl/pgs columns are parse+lower onto the shared IR; the plan compile\n\
    \   is frontend-independent and paid once whichever language wrote the schema)\n"

(* ------------------------------------------------------------------ *)
(* E7b — per-mode cost breakdown on a fixed workload                    *)

let rule_breakdown () =
  section "E7b: validation cost by mode (indexed engine)";
  let sch = GP.Social.schema () in
  let persons = if fast then 200 else 2000 in
  let g = GP.Social.generate ~persons () in
  Printf.printf "  workload: %d persons (%d nodes, %d edges)\n" persons
    (GP.Property_graph.node_count g)
    (GP.Property_graph.edge_count g);
  List.iter
    (fun (name, mode) ->
      let ms = time_ms (fun () -> GP.Validate.check ~mode sch g) in
      Printf.printf "  %-12s %10.2f ms\n%!" name ms)
    [
      ("weak", GP.Validate.Weak);
      ("directives", GP.Validate.Directives);
      ("strong", GP.Validate.Strong);
    ]

(* ------------------------------------------------------------------ *)
(* E8 — Example 6.1: satisfiability verdicts and timing                 *)

let example_6_1 () =
  section "E8: Example 6.1 — object-type satisfiability";
  let schemas =
    [
      ( "(a)",
        {|
type OT1 {
}
interface IT { hasOT1: OT1 @uniqueForTarget }
type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
|}
      );
      ( "(b)",
        {|
interface IT { f: OT1 @uniqueForTarget }
type OT2 implements IT { f: OT1! @required }
type OT3 implements IT { f: OT1! @required }
type OT1 { g: OT3! @required @uniqueForTarget }
|}
      );
      ( "(c)",
        {|
type OT1 {
}
interface IT { f: OT1 @uniqueForTarget }
type OT2 implements IT { f: OT1! @required }
type OT3 implements IT { f: [OT1] @requiredForTarget }
|}
      );
    ]
  in
  Printf.printf "  %-4s %-4s %-16s %-16s %10s\n" "diag" "type" "ALCQI (paper)" "finite PG"
    "time (ms)";
  List.iter
    (fun (name, text) ->
      match GP.Of_ast.parse_lenient text with
      | Error msg -> Printf.printf "  %s: parse error: %s\n" name msg
      | Ok sch ->
        List.iter
          (fun ot ->
            let ms = time_ms (fun () -> GP.Satisfiability.check ~max_nodes:8 sch ot) in
            let r = GP.Satisfiability.check ~max_nodes:8 sch ot in
            Printf.printf "  %-4s %-4s %-16s %-16s %10.2f\n%!" name ot
              (Format.asprintf "%a" GP.Tableau.pp_verdict r.GP.Satisfiability.alcqi)
              (Format.asprintf "%a" GP.Tableau.pp_verdict r.GP.Satisfiability.finite)
              ms)
          (GP.Schema.object_names sch))
    schemas;
  Printf.printf
    "  note: (b)/OT2 shows the finite-model gap in the paper's Theorem 3 proof\n"

(* ------------------------------------------------------------------ *)
(* E9 — Theorem 2: satisfiability on SAT reductions vs DPLL             *)

let sat_reduction_scaling () =
  section "E9: Theorem 2 — reduction instances, tableau+finite engines vs DPLL";
  Printf.printf "  %-6s %-8s %-8s %-7s %-7s %12s %12s\n" "vars" "clauses" "|schema|" "dpll"
    "gpgs" "dpll (ms)" "gpgs (ms)";
  let var_counts = if fast then [ 2; 4 ] else [ 2; 3; 4; 5; 6; 8; 10 ] in
  List.iter
    (fun num_vars ->
      let num_clauses = max 1 (int_of_float (2.5 *. float_of_int num_vars)) in
      let f = GP.Ksat.random ~seed:11 ~num_vars ~num_clauses ~clause_size:3 () in
      match GP.Reduction.to_schema f with
      | Error msg -> Printf.printf "  reduction error: %s\n" msg
      | Ok sch ->
        let dpll_ms = time_ms (fun () -> GP.Dpll.satisfiable f) in
        let gpgs_ms =
          time_ms ~repeat:1 (fun () ->
              GP.Satisfiability.check ~max_nodes:32 sch GP.Reduction.ot_name)
        in
        let report = GP.Satisfiability.check ~max_nodes:32 sch GP.Reduction.ot_name in
        let verdict = function
          | GP.Tableau.Satisfiable -> "sat"
          | GP.Tableau.Unsatisfiable -> "unsat"
          | GP.Tableau.Unknown _ -> "?"
        in
        Printf.printf "  %-6d %-8d %-8d %-7s %-7s %12.3f %12.2f\n%!" num_vars num_clauses
          (GP.Schema.size sch)
          (if GP.Dpll.satisfiable f then "sat" else "unsat")
          (verdict report.GP.Satisfiability.finite)
          dpll_ms gpgs_ms)
    var_counts;
  Printf.printf "  (schema size grows polynomially; solving time grows exponentially)\n"

(* ------------------------------------------------------------------ *)
(* E10 — Theorem 3: size of the ALCQI translation                       *)

let alcqi_translation () =
  section "E10: Theorem 3 — schema size vs ALCQI TBox size (polynomial)";
  let cases =
    [
      ( "quickstart (Ex. 3.1)",
        GP.schema_of_string_exn
          {|
type UserSession { id: ID! @required user: User! @required startTime: Time! @required endTime: Time }
type User @key(fields: ["id"]) { id: ID! @required login: String! @required nicknames: [String!]! }
scalar Time
|}
      );
      ( "library (Ex. 3.6-3.8)",
        GP.schema_of_string_exn
          {|
type Author { favoriteBook: Book relatedAuthor: [Author] @distinct @noLoops }
type Book { title: String! author: [Author] @required @distinct }
type BookSeries { contains: [Book] @required @uniqueForTarget }
type Publisher { published: [Book] @uniqueForTarget @requiredForTarget }
|}
      );
      ("social", GP.Social.schema ());
    ]
  in
  Printf.printf "  %-24s %10s %10s %8s\n" "schema" "|schema|" "|TBox|" "ratio";
  List.iter
    (fun (name, sch) ->
      let s, t = GP.Translate.translation_size sch in
      Printf.printf "  %-24s %10d %10d %8.2f\n" name s t (float_of_int t /. float_of_int s))
    cases;
  (* reductions of growing size *)
  List.iter
    (fun num_vars ->
      let f =
        GP.Ksat.random ~seed:3 ~num_vars ~num_clauses:(2 * num_vars) ~clause_size:3 ()
      in
      match GP.Reduction.to_schema f with
      | Ok sch ->
        let s, t = GP.Translate.translation_size sch in
        Printf.printf "  %-24s %10d %10d %8.2f\n"
          (Printf.sprintf "reduction (%d vars)" num_vars)
          s t
          (float_of_int t /. float_of_int s)
      | Error _ -> ())
    (if fast then [ 4 ] else [ 4; 8; 16; 32 ])

(* ------------------------------------------------------------------ *)
(* E11 — Angles baseline coverage                                       *)

let angles_coverage () =
  section "E11: Angles-2018 baseline — constraint coverage of SDL schemas";
  Printf.printf "  %-24s %12s %10s\n" "schema" "expressed" "dropped";
  List.iter
    (fun (name, sch) ->
      let e, d = GP.Angles_of_graphql.coverage sch in
      Printf.printf "  %-24s %12d %10d\n" name e d)
    [
      ("social", GP.Social.schema ());
      ( "library (Ex. 3.6-3.8)",
        GP.schema_of_string_exn
          {|
type Author { favoriteBook: Book relatedAuthor: [Author] @distinct @noLoops }
type Book { title: String! author: [Author] @required @distinct }
type BookSeries { contains: [Book] @required @uniqueForTarget }
type Publisher { published: [Book] @uniqueForTarget @requiredForTarget }
|}
      );
    ];
  let _, dropped = GP.Angles_of_graphql.translate (GP.Social.schema ()) in
  List.iter
    (fun (d : GP.Angles_of_graphql.dropped) ->
      Printf.printf "    dropped: %s (%s)\n" d.GP.Angles_of_graphql.construct
        d.GP.Angles_of_graphql.reason)
    dropped

(* ------------------------------------------------------------------ *)
(* E6 — parser throughput                                               *)

let parser_throughput () =
  section "E6: SDL front end throughput";
  let social = GP.Social.schema_text in
  let big =
    String.concat "\n"
      (List.init 50 (fun i ->
           Printf.sprintf
             "type T%d @key(fields: [\"id\"]) { id: ID! @required r%d: [T%d] @distinct }" i i
             ((i + 1) mod 50)))
  in
  List.iter
    (fun (name, text) ->
      let ms = time_ms ~repeat:5 (fun () -> GP.Sdl.Parser.parse text) in
      let bytes = String.length text in
      Printf.printf "  %-14s %8d bytes  %8.3f ms  %8.1f MB/s\n" name bytes ms
        (float_of_int bytes /. 1048576.0 /. (ms /. 1000.0)))
    [ ("social", social); ("synthetic-50", big) ]

(* ------------------------------------------------------------------ *)
(* E13 — ablation: incremental vs. full revalidation on update streams   *)

let incremental_ablation () =
  section "E13 (extension): incremental validation vs full revalidation per update";
  let sch = GP.Social.schema () in
  Printf.printf "  %-8s %-8s %18s %18s %10s\n" "persons" "nodes" "full/update (ms)"
    "incr/update (ms)" "speedup";
  List.iter
    (fun persons ->
      let g = GP.Social.generate ~persons () in
      let nodes = Array.of_list (GP.Property_graph.nodes g) in
      let updates = 20 in
      (* the update: toggle a property on a rotating node *)
      let full_ms =
        time_ms ~repeat:1 (fun () ->
            let g = ref g in
            for i = 0 to updates - 1 do
              let v = nodes.(i * 17 mod Array.length nodes) in
              g := GP.Property_graph.set_node_prop !g v "benchProp" (GP.Value.Int i);
              ignore (GP.Validate.check ~engine:GP.Validate.Indexed sch !g)
            done)
        /. float_of_int updates
      in
      let incr_ms =
        time_ms ~repeat:1 (fun () ->
            let t = ref (GP.Incremental.create sch g) in
            for i = 0 to updates - 1 do
              let v = nodes.(i * 17 mod Array.length nodes) in
              t := GP.Incremental.set_node_prop !t v "benchProp" (GP.Value.Int i)
            done)
        /. float_of_int updates
      in
      Printf.printf "  %-8d %-8d %18.3f %18.3f %9.0fx\n%!" persons
        (GP.Property_graph.node_count g) full_ms incr_ms (full_ms /. incr_ms))
    (if fast then [ 100; 500 ] else [ 100; 500; 2000; 8000 ]);
  Printf.printf
    "  (the touched region per update is small; the residual growth comes from the\n\
    \   per-type key scan of DS7 — see lib/validation/incremental.mli)\n"

(* ------------------------------------------------------------------ *)
(* E14 — the GraphQL query engine (Section 3.6 extension) on the social
   workload                                                              *)

let query_engine () =
  section "E14 (extension): GraphQL query execution over the social workload";
  let sch = GP.Social.schema () in
  let queries =
    [
      ("flat scan", "{ allCity { name population } }");
      ("one-hop", "{ allForum { title moderator { name } } }");
      ( "two-hop + filter",
        "{ allForum { title containerOf { id author { name livesIn { name } } } } }" );
      ( "inverse + union",
        "{ allPost { id _inverse_likes_of_person { name } } }" );
    ]
  in
  Printf.printf "  %-18s %12s %12s\n" "query" "persons=200" "persons=1000";
  let graphs =
    List.map (fun p -> GP.Social.generate ~persons:p ()) (if fast then [ 50; 100 ] else [ 200; 1000 ])
  in
  List.iter
    (fun (name, q) ->
      let times =
        List.map
          (fun g ->
            time_ms (fun () ->
                match GP.query sch g q with
                | Ok _ -> ()
                | Error msg -> failwith msg))
          graphs
      in
      match times with
      | [ t1; t2 ] -> Printf.printf "  %-18s %9.2f ms %9.2f ms\n%!" name t1 t2
      | _ -> ())
    queries

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment               *)

let bechamel_tests () =
  let sch = GP.Social.schema () in
  let g300 = GP.Social.generate ~persons:300 () in
  let g60 = GP.Social.generate ~persons:60 () in
  let schema_text = GP.Social.schema_text in
  let f = GP.Cnf.paper_example in
  let reduction_schema =
    match GP.Reduction.to_schema f with Ok s -> s | Error m -> failwith m
  in
  let example_b =
    match
      GP.Of_ast.parse_lenient
        {|
interface IT { f: OT1 @uniqueForTarget }
type OT2 implements IT { f: OT1! @required }
type OT3 implements IT { f: OT1! @required }
type OT1 { g: OT3! @required @uniqueForTarget }
|}
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  Test.make_grouped ~name:"graphql_pg"
    [
      (* E6 *)
      Test.make ~name:"e6_parse_social_schema"
        (Staged.stage (fun () -> GP.Sdl.Parser.parse schema_text));
      (* E7 *)
      Test.make ~name:"e7_validate_indexed_300"
        (Staged.stage (fun () -> GP.Validate.check ~engine:GP.Validate.Indexed sch g300));
      Test.make ~name:"e7_validate_naive_60"
        (Staged.stage (fun () -> GP.Validate.check ~engine:GP.Validate.Naive sch g60));
      (* E15 *)
      Test.make ~name:"e15_validate_parallel_300"
        (Staged.stage (fun () -> GP.Validate.check ~engine:GP.Validate.Parallel sch g300));
      (* E16 *)
      Test.make ~name:"e16_validate_compiled_indexed_300"
        (Staged.stage
           (let plan = GP.Validate.compile sch in
            fun () -> GP.Validate.check_compiled ~engine:GP.Validate.Indexed plan g300));
      Test.make ~name:"e16_validate_compiled_linear_300"
        (Staged.stage
           (let plan = GP.Validate.compile sch in
            fun () -> GP.Validate.check_compiled ~engine:GP.Validate.Linear plan g300));
      Test.make ~name:"e16_snapshot_build_300"
        (Staged.stage
           (let plan = GP.Validate.compile sch in
            fun () -> GP.Snapshot.build (GP.Plan.symtab plan) g300));
      (* E3 *)
      Test.make ~name:"e3_cardinality_probe"
        (Staged.stage
           (let s =
              GP.schema_of_string_exn "type A { rel: B @uniqueForTarget }\ntype B {\n}"
            in
            let g, a = GP.Property_graph.add_node GP.Property_graph.empty ~label:"A" () in
            let g, b = GP.Property_graph.add_node g ~label:"B" () in
            let g, _ = GP.Property_graph.add_edge g ~label:"rel" a b in
            fun () -> GP.conforms s g));
      (* E8 *)
      Test.make ~name:"e8_example_b_satisfiability"
        (Staged.stage (fun () -> GP.Satisfiability.check ~max_nodes:8 example_b "OT2"));
      (* E9 *)
      Test.make ~name:"e9_reduction_paper_formula"
        (Staged.stage (fun () ->
             GP.Satisfiability.check ~max_nodes:16 reduction_schema GP.Reduction.ot_name));
      (* E10 *)
      Test.make ~name:"e10_translate_social" (Staged.stage (fun () -> GP.Translate.tbox sch));
      (* E11 *)
      Test.make ~name:"e11_angles_translate"
        (Staged.stage (fun () -> GP.Angles_of_graphql.translate sch));
      (* E13 *)
      Test.make ~name:"e13_incremental_update"
        (Staged.stage
           (let t0 = GP.Incremental.create sch g300 in
            let v = List.hd (GP.Property_graph.nodes g300) in
            fun () -> GP.Incremental.set_node_prop t0 v "benchProp" (GP.Value.Int 1)));
      (* E14 *)
      Test.make ~name:"e14_query_one_hop"
        (Staged.stage (fun () ->
             GP.query sch g300 "{ allForum { title moderator { name } } }"));
    ]

let run_bechamel () =
  section "Bechamel micro-benchmarks (ns per run, OLS on monotonic clock)";
  let cfg =
    Benchmark.cfg ~limit:1000
      ~quota:(Time.second (if fast then 0.05 else 0.25))
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (bechamel_tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
        in
        (name, estimate) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "  %-42s %14s\n" name "n/a"
      else Printf.printf "  %-42s %11.0f ns  (%.3f ms)\n" name ns (ns /. 1e6))
    rows

(* BENCH_ONLY=E18 (comma-separated experiment tags) runs a subset —
   e.g. the CI smoke step measures just the snapshot-reopen experiment
   at full scale without paying for the naive-engine series. *)
let experiments =
  [
    ("E3", cardinality_table);
    ("E7", validation_scaling);
    ("E15", parallel_scaling);
    ("E16", compiled_pipeline);
    ("E17", streaming_ingestion);
    ("E18", snapshot_reopen);
    ("E19", sharded_scaling);
    ("E20", serve_storm);
    ("E21", frontend_compile);
    ("E7b", rule_breakdown);
    ("E8", example_6_1);
    ("E9", sat_reduction_scaling);
    ("E10", alcqi_translation);
    ("E11", angles_coverage);
    ("E13", incremental_ablation);
    ("E14", query_engine);
    ("E6", parser_throughput);
    ("bechamel", run_bechamel);
  ]

let () =
  Printf.printf "graphql_pg benchmark harness%s\n" (if fast then " (fast mode)" else "");
  let selected =
    match Sys.getenv_opt "BENCH_ONLY" with
    | None | Some "" -> None
    | Some spec -> Some (String.split_on_char ',' spec |> List.map String.trim)
  in
  List.iter
    (fun (tag, f) ->
      match selected with
      | Some tags when not (List.mem tag tags) -> ()
      | _ -> f ())
    experiments;
  write_artifacts ();
  Printf.printf "\ndone.\n"
