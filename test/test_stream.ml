(* Streaming fault-tolerant ingestion (lib/graph/stream.ml, the
   incremental Pgf/Graphml readers) and the supervised job runner
   (lib/validation/supervisor.ml).

   - differential qcheck: the streaming readers agree with the slurp
     parsers on every generated instance, at every chunk size, on clean
     and corrupted texts alike;
   - fault injection: a garbled record is skipped atomically and
     quarantined exactly, the partial graph still validates, and the
     error budget stops ingestion deterministically;
   - supervision: the exception firewall, the deterministic backoff
     schedule, the retry policy, and the VAL002 crash taxonomy. *)

module GP = Graphql_pg
module G = GP.Property_graph
module Pgf = GP.Pgf
module Graphml = GP.Graphml
module Stream = GP.Stream
module Chunked = GP.Chunked
module Corruption = GP.Corruption
module Sup = GP.Supervisor
module Diag = GP.Diag

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let seeded_rng seed = Random.State.make [| seed; 0x57EA4 |]
let social seed = GP.Social.generate ~seed ~persons:(3 + (seed mod 6)) ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

(* ---- differential: streaming == slurp, at every chunk size ---- *)

let chunk_sizes text = [ 1; 3; 7; 64; max 1 (String.length text) ]

let pgf_result_equal a b =
  match (a, b) with
  | Ok g1, Ok g2 -> G.equal g1 g2
  | Result.Error (e1 : Pgf.error), Result.Error (e2 : Pgf.error) ->
    e1.line = e2.line && e1.message = e2.message
  | Ok _, Result.Error _ | Result.Error _, Ok _ -> false

let graphml_result_equal a b =
  match (a, b) with
  | Ok g1, Ok g2 -> G.equal g1 g2
  | Result.Error (e1 : Graphml.error), Result.Error (e2 : Graphml.error) ->
    e1.message = e2.message
  | Ok _, Result.Error _ | Result.Error _, Ok _ -> false

let differential ~name ~count gen_text result_equal parse read =
  QCheck2.Test.make ~name ~count
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun seeds ->
      let text = gen_text seeds in
      let slurp = parse text in
      List.for_all
        (fun chunk_size -> result_equal slurp (read (Chunked.of_string ~chunk_size text)))
        (chunk_sizes text))

let clean_pgf (seed, _) = Pgf.print (social seed)
let clean_graphml (seed, _) = Graphml.to_string (social seed)

let corrupted corrupt gen (seed, fault_seed) =
  corrupt (seeded_rng fault_seed) (gen (seed, fault_seed))

let prop_pgf_clean =
  differential ~name:"PGF: streaming == slurp on clean instances" ~count:60 clean_pgf
    pgf_result_equal Pgf.parse Pgf.read

let prop_pgf_corrupted =
  differential ~name:"PGF: streaming == slurp on corrupted instances" ~count:120
    (corrupted Corruption.corrupt_text clean_pgf)
    pgf_result_equal Pgf.parse Pgf.read

let prop_graphml_clean =
  differential ~name:"GraphML: streaming == slurp on clean instances" ~count:40 clean_graphml
    graphml_result_equal Graphml.parse Graphml.read

let prop_graphml_corrupted =
  differential ~name:"GraphML: streaming == slurp on corrupted instances" ~count:120
    (corrupted Corruption.corrupt_text clean_graphml)
    graphml_result_equal Graphml.parse Graphml.read

(* the tolerant reader must not care about chunk geometry either *)
let outcome_equal (a : Stream.outcome) (b : Stream.outcome) =
  G.equal a.graph b.graph && a.complete = b.complete && a.faults = b.faults
  && a.budget_exhausted = b.budget_exhausted
  && a.records = b.records

let prop_tolerant_chunk_invariant =
  QCheck2.Test.make ~name:"PGF tolerant reader is chunk-size invariant" ~count:60
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, fault_seed) ->
      let text = Pgf.print (social seed) in
      let bad =
        match Corruption.garble_record (seeded_rng fault_seed) text with
        | Some (_, t) -> t
        | None -> text
      in
      let reference = Stream.read_pgf (Stream.of_string bad) in
      List.for_all
        (fun chunk_size ->
          outcome_equal reference (Stream.read_pgf (Chunked.of_string ~chunk_size bad)))
        (chunk_sizes bad))

(* ---- fault injection: skip, quarantine, budget ---- *)

let sample =
  "# demo\n\
   node a :A {x: 1}\n\
   node b :B\n\
   edge a -> b :r\n\
   edge b -> a :s {w: 0.5}\n"

let map_line n f text =
  String.concat "\n"
    (List.mapi (fun i l -> if i + 1 = n then f l else l) (String.split_on_char '\n' text))

let garble_line n text = map_line n (fun l -> Corruption.garble_marker ^ l) text
let drop_line n text = map_line n (fun _ -> "") text

let test_garbled_edge_skipped () =
  let bad = garble_line 4 sample in
  let o = Stream.read_pgf (Stream.of_string bad) in
  check_int "one fault" 1 (List.length o.faults);
  let f = List.hd o.faults in
  check_int "fault record is the garbled line" 4 f.record;
  check_string "fault carries the raw record" (Corruption.garble_marker ^ "edge a -> b :r") f.text;
  check_string "fault subject" "line 4" f.subject;
  check_bool "incomplete" false o.complete;
  check_bool "no early stop" false o.budget_exhausted;
  check_int "all records seen" 4 o.records;
  (* atomic skip: the graph is as if the record were absent *)
  match Pgf.parse (drop_line 4 sample) with
  | Ok expected -> check_bool "graph minus the record" true (G.equal o.graph expected)
  | Result.Error _ -> Alcotest.fail "reference parse failed"

let test_garbled_node_cascades () =
  (* dropping [node a] also faults both edges that reference [a] *)
  let bad = garble_line 2 sample in
  let o = Stream.read_pgf (Stream.of_string bad) in
  check_int "cascading faults" 3 (List.length o.faults);
  check_bool "fault order" true
    (List.map (fun (f : Stream.fault) -> f.record) o.faults = [ 2; 4; 5 ]);
  check_int "surviving node" 1 (G.node_count o.graph);
  check_int "no surviving edge" 0 (G.edge_count o.graph)

let test_error_budget () =
  let text = "node a :A\nnode b :B\nnode c :C\nnode d :D\n" in
  let bad = garble_line 1 (garble_line 2 (garble_line 3 text)) in
  (* budget 1: one fault tolerated, the second is recorded, then stop *)
  let o = Stream.read_pgf ~max_errors:1 (Stream.of_string bad) in
  check_int "two faults reported" 2 (List.length o.faults);
  check_bool "budget exhausted" true o.budget_exhausted;
  check_bool "incomplete" false o.complete;
  check_int "stopped at record 2" 2 o.records;
  check_int "nothing ingested" 0 (G.node_count o.graph);
  (* unlimited budget reads to the end *)
  let o' = Stream.read_pgf (Stream.of_string bad) in
  check_int "all faults without budget" 3 (List.length o'.faults);
  check_bool "no early stop without budget" false o'.budget_exhausted;
  check_int "clean tail ingested" 1 (G.node_count o'.graph)

let test_quarantine_exact () =
  let input = Filename.temp_file "gpgs_stream" ".pgf" in
  let quarantine = Filename.temp_file "gpgs_stream" ".quarantine" in
  Sys.remove quarantine;
  let garbled = Corruption.garble_marker ^ "edge a -> b :r" in
  write_file input (garble_line 4 sample);
  (match Stream.load_pgf ~quarantine input with
  | Ok o ->
    check_bool "incomplete" false o.complete;
    check_string "quarantine holds exactly the corrupted record" (garbled ^ "\n")
      (read_file quarantine)
  | Result.Error e -> Alcotest.failf "load failed: %a" Pgf.pp_error e);
  Sys.remove quarantine;
  (* a clean ingest must not leave an empty quarantine file behind *)
  write_file input sample;
  (match Stream.load_pgf ~quarantine input with
  | Ok o ->
    check_bool "complete" true o.complete;
    check_bool "no quarantine file on clean input" false (Sys.file_exists quarantine)
  | Result.Error e -> Alcotest.failf "clean load failed: %a" Pgf.pp_error e);
  Sys.remove input

let prop_quarantine_matches_faults =
  QCheck2.Test.make ~name:"quarantine file == faulted records, one per line" ~count:15
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, fault_seed) ->
      match Corruption.garble_record (seeded_rng fault_seed) (Pgf.print (social seed)) with
      | None -> true
      | Some (_, bad) ->
        let input = Filename.temp_file "gpgs_stream" ".pgf" in
        let quarantine = input ^ ".quarantine" in
        write_file input bad;
        let ok =
          match Stream.load_pgf ~quarantine input with
          | Ok o ->
            let expected =
              String.concat "" (List.map (fun (f : Stream.fault) -> f.text ^ "\n") o.faults)
            in
            (not o.complete) && o.faults <> [] && read_file quarantine = expected
          | Result.Error _ -> false
        in
        Sys.remove input;
        if Sys.file_exists quarantine then Sys.remove quarantine;
        ok)

let prop_duplicate_record =
  QCheck2.Test.make ~name:"duplicated node is one fault; duplicated edge is silent" ~count:60
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, fault_seed) ->
      let text = Pgf.print (social seed) in
      match Corruption.duplicate_record (seeded_rng fault_seed) text with
      | None -> true
      | Some (line, bad) ->
        let o = Stream.read_pgf (Stream.of_string bad) in
        let dup = List.nth (String.split_on_char '\n' bad) (line - 1) in
        if String.length dup >= 4 && String.sub dup 0 4 = "node" then
          (* exactly the duplicate handle faults; the graph is unchanged *)
          List.length o.faults = 1
          && (List.hd o.faults).record = line
          && (List.hd o.faults).text = dup
          && (not o.complete)
          && G.equal o.graph (Result.get_ok (Pgf.parse text))
        else o.faults = [] && o.complete)

let test_partial_graph_still_validates () =
  let sch = GP.Social.schema () in
  let text = Pgf.print (GP.Social.generate ~seed:7 ~persons:8 ()) in
  match Corruption.garble_record (seeded_rng 3) text with
  | None -> Alcotest.fail "no record to garble"
  | Some (_, bad) ->
    let o = Stream.read_pgf (Stream.of_string bad) in
    check_bool "ingest incomplete" false o.complete;
    (* the partial graph flows into validation like any other graph *)
    let report = GP.Validate.check sch o.graph in
    check_bool "validation completed on the partial graph" true report.GP.Validate.complete;
    check_int "every surviving node checked" (G.node_count o.graph)
      report.GP.Validate.nodes_checked

let test_graphml_tolerant_unknown_endpoint () =
  let g, a = G.add_node G.empty ~label:"A" () in
  let g, b = G.add_node g ~label:"B" () in
  let g, _ = G.add_edge g ~label:"r" a b in
  let xml = Graphml.to_string g in
  let replace_first hay needle repl =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then hay
      else if String.sub hay i nn = needle then
        String.sub hay 0 i ^ repl ^ String.sub hay (i + nn) (nh - i - nn)
      else go (i + 1)
    in
    go 0
  in
  (* retarget the edge at a node that does not exist *)
  let bad = replace_first xml {|target="n1"|} {|target="n9"|} in
  check_bool "fixture changed" true (bad <> xml);
  match Stream.read_graphml (Stream.of_string bad) with
  | Ok o ->
    check_int "one fault" 1 (List.length o.faults);
    check_bool "edge fault mentions the endpoint" true
      (contains (List.hd o.faults).message "n9");
    check_bool "incomplete" false o.complete;
    check_int "both nodes survive" 2 (G.node_count o.graph);
    check_int "the edge does not" 0 (G.edge_count o.graph)
  | Result.Error e -> Alcotest.failf "tolerant read failed: %a" Graphml.pp_error e

let test_ingest_diagnostics () =
  let bad = garble_line 1 (garble_line 2 (garble_line 3 "node a :A\nnode b :B\nnode c :C\n")) in
  let o = Stream.read_pgf ~max_errors:1 (Stream.of_string bad) in
  let diags = GP.Diag_report.ingest_diagnostics ~file:"g.pgf" o in
  check_int "IO002 per fault plus trailing IO003" 3 (List.length diags);
  check_bool "codes" true
    (List.map (fun (d : Diag.t) -> d.code) diags = [ "IO002"; "IO002"; "IO003" ]);
  check_bool "messages are self-contained" true
    (List.for_all (fun (d : Diag.t) -> contains d.message "g.pgf") diags);
  check_bool "classified as input errors" true (Diag.Exit.classify diags = Diag.Exit.Input_error)

(* ---- the supervisor: firewall, retries, crash taxonomy ---- *)

exception Engine_bug

let test_supervise_first_try () =
  match Sup.supervise (fun () -> 41 + 1) with
  | Sup.Done (v, attempts) ->
    check_int "value" 42 v;
    check_int "one attempt" 1 attempts
  | Sup.Crashed _ -> Alcotest.fail "crashed"

let test_firewall_catches_everything () =
  List.iter
    (fun (name, exn, expect) ->
      match Sup.supervise (fun () -> raise exn) with
      | Sup.Done _ -> Alcotest.failf "%s: expected a crash" name
      | Sup.Crashed c ->
        check_int (name ^ ": one attempt") 1 c.crash_attempts;
        check_bool (name ^ ": not transient") false c.crash_transient;
        check_bool (name ^ ": exception name") true (contains c.crash_exn expect))
    [
      ("stack overflow", Stack_overflow, "Stack overflow");
      ("out of memory", Out_of_memory, "Out of memory");
      ("engine bug", Engine_bug, "Engine_bug");
    ]

let test_transient_retry_schedule () =
  let delays = ref [] in
  let sleep ms = delays := !delays @ [ ms ] in
  let n = ref 0 in
  let flaky () =
    incr n;
    if !n < 3 then raise (Unix.Unix_error (Unix.EINTR, "read", "")) else "ok"
  in
  match Sup.supervise ~policy:(Sup.policy ~retries:3 ()) ~sleep flaky with
  | Sup.Done (v, attempts) ->
    check_string "value" "ok" v;
    check_int "succeeded on attempt 3" 3 attempts;
    check_bool "deterministic backoff" true (!delays = [ 100.; 200. ])
  | Sup.Crashed _ -> Alcotest.fail "crashed"

let test_non_transient_never_retried () =
  let n = ref 0 in
  let job () =
    incr n;
    raise Engine_bug
  in
  match Sup.supervise ~policy:(Sup.policy ~retries:5 ()) ~sleep:(fun _ -> ()) job with
  | Sup.Done _ -> Alcotest.fail "expected a crash"
  | Sup.Crashed c ->
    check_int "one attempt" 1 c.crash_attempts;
    check_int "job ran once" 1 !n;
    check_bool "not transient" false c.crash_transient

let test_retries_exhausted () =
  let delays = ref [] in
  let job () = raise (Unix.Unix_error (Unix.ECONNRESET, "read", "")) in
  match Sup.supervise ~policy:(Sup.policy ~retries:2 ()) ~sleep:(fun d -> delays := !delays @ [ d ]) job with
  | Sup.Done _ -> Alcotest.fail "expected a crash"
  | Sup.Crashed c ->
    check_int "retries + 1 attempts" 3 c.crash_attempts;
    check_bool "final failure was transient" true c.crash_transient;
    check_bool "full schedule" true (!delays = [ 100.; 200. ])

(* The transient set is a contract: interrupted/reset I/O retries,
   deterministic errnos (ENOENT, EACCES, ...) fail fast. *)
let test_transient_classification () =
  let unix e = Unix.Unix_error (e, "op", "arg") in
  List.iter
    (fun (name, exn) ->
      check_bool (name ^ " is transient") true (Sup.default_transient exn))
    [
      ("EINTR", unix Unix.EINTR);
      ("EAGAIN", unix Unix.EAGAIN);
      ("EWOULDBLOCK", unix Unix.EWOULDBLOCK);
      ("ECONNRESET", unix Unix.ECONNRESET);
      ("ETIMEDOUT", unix Unix.ETIMEDOUT);
      ("Sys_error EINTR", Sys_error "read: Interrupted system call");
      ("Sys_error ECONNRESET", Sys_error "g.pgf: Connection reset by peer");
    ];
  List.iter
    (fun (name, exn) ->
      check_bool (name ^ " fails fast") false (Sup.default_transient exn))
    [
      ("ENOENT", unix Unix.ENOENT);
      ("EACCES", unix Unix.EACCES);
      ("EBADF", unix Unix.EBADF);
      ("ENOSPC", unix Unix.ENOSPC);
      ("Sys_error ENOENT", Sys_error "g.pgf: No such file or directory");
      ("Sys_error EACCES", Sys_error "g.pgf: Permission denied");
      ("plain failure", Failure "engine bug");
    ];
  (* a deterministic errno is never retried even with retries available *)
  let n = ref 0 in
  let job () =
    incr n;
    raise (unix Unix.ENOENT)
  in
  match Sup.supervise ~policy:(Sup.policy ~retries:5 ()) ~sleep:(fun _ -> ()) job with
  | Sup.Done _ -> Alcotest.fail "expected a crash"
  | Sup.Crashed c ->
    check_int "one attempt" 1 c.Sup.crash_attempts;
    check_int "job ran once" 1 !n;
    check_bool "not transient" false c.Sup.crash_transient

let test_backoff_and_policy_validation () =
  check_bool "schedule" true
    (Sup.backoff_delays (Sup.policy ~retries:3 ~backoff_ms:50.0 ~multiplier:3.0 ())
    = [ 50.0; 150.0; 450.0 ]);
  check_bool "no retries, no delays" true (Sup.backoff_delays Sup.default_policy = []);
  let rejects f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "negative retries rejected" true (rejects (fun () -> Sup.policy ~retries:(-1) ()));
  check_bool "zero backoff rejected" true (rejects (fun () -> Sup.policy ~backoff_ms:0.0 ()));
  check_bool "zero multiplier rejected" true (rejects (fun () -> Sup.policy ~multiplier:0.0 ()))

let test_crash_diagnostic () =
  match Sup.supervise (fun () -> failwith "engine exploded") with
  | Sup.Done _ -> Alcotest.fail "expected a crash"
  | Sup.Crashed c ->
    let d = Sup.crash_diagnostic ~subject:"jobs/g.pgf" c in
    check_string "code" "VAL002" d.Diag.code;
    check_bool "error severity" true (d.Diag.severity = Diag.Error);
    check_bool "classified as budget" true (Diag.Exit.classify [ d ] = Diag.Exit.Budget);
    check_bool "message names the subject" true (contains d.Diag.message "jobs/g.pgf");
    check_bool "message names the exception" true (contains d.Diag.message "engine exploded")

let test_batch_report () =
  let jr job job_status = { Sup.job; job_status; attempts = 1; diags = [] } in
  let b =
    Sup.make_batch [ jr "a.pgf" Sup.Completed; jr "b.pgf" Sup.Completed; jr "c.pgf" Sup.Unreadable ]
  in
  check_int "completed" 2 b.Sup.completed;
  check_int "partial" 0 b.Sup.partial;
  check_int "crashed" 0 b.Sup.crashed;
  check_int "unreadable" 1 b.Sup.unreadable;
  check_string "summary line" "3 job(s): 2 completed, 1 unreadable"
    (Format.asprintf "%a" Sup.pp_batch b)

(* ---- gpgs batch, end to end ---- *)

let test_dir = Filename.dirname Sys.executable_name
let in_repo rel = Filename.concat test_dir rel

let run_cli args =
  let out = Filename.temp_file "gpgs_stream" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>/dev/null"
      (Filename.quote (in_repo "../bin/gpgs.exe"))
      args (Filename.quote out)
  in
  let code =
    match Sys.command cmd with c when c land 0xff = 0 -> c lsr 8 | c -> c
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let member = GP.Json.member
let json_int j = match j with GP.Json.Int n -> n | _ -> Alcotest.fail "expected an int"
let json_string j = match j with GP.Json.String s -> s | _ -> Alcotest.fail "expected a string"

let test_batch_cli_continue_on_error () =
  let schema = in_repo "../examples/movies.graphql" in
  let movies = read_file (in_repo "../examples/movies.pgf") in
  let clean = Filename.temp_file "gpgs_clean" ".pgf" in
  let broken = Filename.temp_file "gpgs_broken" ".pgf" in
  write_file clean movies;
  (match Corruption.garble_record (seeded_rng 11) movies with
  | Some (_, bad) -> write_file broken bad
  | None -> Alcotest.fail "movies.pgf has no records");
  (* strict loading: the broken file is unreadable, the clean job still runs *)
  let code, out =
    run_cli
      (Printf.sprintf "batch %s %s %s --format json" (Filename.quote schema)
         (Filename.quote clean) (Filename.quote broken))
  in
  check_int "IO001 dominates the exit code" 2 code;
  (match GP.Json.of_string out with
  | Ok json ->
    let summary = member "summary" json in
    check_int "clean job completed" 1 (json_int (member "completed" summary));
    check_int "broken job unreadable" 1 (json_int (member "unreadable" summary));
    let jobs = member "jobs" summary in
    check_string "job order preserved" "completed"
      (json_string (member "status" (GP.Json.index 0 jobs)));
    check_string "broken job reported" "unreadable"
      (json_string (member "status" (GP.Json.index 1 jobs)))
  | Result.Error msg -> Alcotest.failf "batch emitted invalid JSON: %s" msg);
  (* streaming ingestion: the same broken file becomes a partial job *)
  let code, out =
    run_cli
      (Printf.sprintf "batch %s %s --stream --format json" (Filename.quote schema)
         (Filename.quote broken))
  in
  check_int "IO002 keeps the input class" 2 code;
  (match GP.Json.of_string out with
  | Ok json ->
    let summary = member "summary" json in
    check_int "streamed job is partial" 1 (json_int (member "partial" summary));
    check_int "nothing unreadable" 0 (json_int (member "unreadable" summary))
  | Result.Error msg -> Alcotest.failf "batch emitted invalid JSON: %s" msg);
  Sys.remove clean;
  Sys.remove broken

let test_batch_cli_mixed_failures () =
  (* one clean graph, one governor-budget-exceeded graph, one broken
     graph: the clean job completes, both failures are reported in the
     single envelope, and the exit code follows Input > Budget *)
  let schema = in_repo "../examples/movies.graphql" in
  let movies = read_file (in_repo "../examples/movies.pgf") in
  let clean = Filename.temp_file "gpgs_clean" ".pgf" in
  let budget = Filename.temp_file "gpgs_budget" ".pgf" in
  let broken = Filename.temp_file "gpgs_broken" ".pgf" in
  write_file clean "# an empty graph conforms\n";
  write_file budget movies;
  (match Corruption.garble_record (seeded_rng 11) movies with
  | Some (_, bad) -> write_file broken bad
  | None -> Alcotest.fail "movies.pgf has no records");
  let run extra =
    run_cli
      (Printf.sprintf "batch %s %s --max-violations 1 --format json" (Filename.quote schema)
         extra)
  in
  (* movies.pgf has > 1 violation, so the cap makes that job partial *)
  let code, out =
    run
      (Printf.sprintf "%s %s %s" (Filename.quote clean) (Filename.quote budget)
         (Filename.quote broken))
  in
  check_int "input error dominates budget" 2 code;
  (match GP.Json.of_string out with
  | Ok json ->
    let summary = member "summary" json in
    let status i = json_string (member "status" (GP.Json.index i (member "jobs" summary))) in
    check_string "clean job completed" "completed" (status 0);
    check_string "budget job partial" "partial" (status 1);
    check_string "broken job unreadable" "unreadable" (status 2)
  | Result.Error msg -> Alcotest.failf "batch emitted invalid JSON: %s" msg);
  (* without the broken input, the budget class decides the exit code *)
  let code, out = run (Printf.sprintf "%s %s" (Filename.quote clean) (Filename.quote budget)) in
  check_int "budget exit without input errors" 3 code;
  (match GP.Json.of_string out with
  | Ok json ->
    check_int "clean job still completes" 1 (json_int (member "completed" (member "summary" json)));
    check_string "envelope classifies as budget" "budget-exhausted"
      (json_string (member "status" json))
  | Result.Error msg -> Alcotest.failf "batch emitted invalid JSON: %s" msg);
  Sys.remove clean;
  Sys.remove budget;
  Sys.remove broken

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pgf_clean;
    QCheck_alcotest.to_alcotest prop_pgf_corrupted;
    QCheck_alcotest.to_alcotest prop_graphml_clean;
    QCheck_alcotest.to_alcotest prop_graphml_corrupted;
    QCheck_alcotest.to_alcotest prop_tolerant_chunk_invariant;
    Alcotest.test_case "garbled edge is skipped atomically" `Quick test_garbled_edge_skipped;
    Alcotest.test_case "garbled node cascades to its edges" `Quick test_garbled_node_cascades;
    Alcotest.test_case "error budget stops ingestion" `Quick test_error_budget;
    Alcotest.test_case "quarantine holds exactly the bad records" `Quick test_quarantine_exact;
    QCheck_alcotest.to_alcotest prop_quarantine_matches_faults;
    QCheck_alcotest.to_alcotest prop_duplicate_record;
    Alcotest.test_case "partial graph still validates" `Quick test_partial_graph_still_validates;
    Alcotest.test_case "GraphML unknown endpoint is one fault" `Quick
      test_graphml_tolerant_unknown_endpoint;
    Alcotest.test_case "ingest diagnostics: IO002/IO003" `Quick test_ingest_diagnostics;
    Alcotest.test_case "supervise: success on first try" `Quick test_supervise_first_try;
    Alcotest.test_case "supervise: firewall catches everything" `Quick
      test_firewall_catches_everything;
    Alcotest.test_case "supervise: deterministic retry schedule" `Quick
      test_transient_retry_schedule;
    Alcotest.test_case "supervise: non-transient crashes fast" `Quick
      test_non_transient_never_retried;
    Alcotest.test_case "supervise: retries exhausted" `Quick test_retries_exhausted;
    Alcotest.test_case "supervise: transient errno classification" `Quick
      test_transient_classification;
    Alcotest.test_case "backoff schedule and policy validation" `Quick
      test_backoff_and_policy_validation;
    Alcotest.test_case "crash diagnostic is VAL002" `Quick test_crash_diagnostic;
    Alcotest.test_case "batch report counts and summary" `Quick test_batch_report;
    Alcotest.test_case "gpgs batch continues on error" `Quick test_batch_cli_continue_on_error;
    Alcotest.test_case "gpgs batch: clean + budget + broken" `Quick test_batch_cli_mixed_failures;
  ]
