(* Differential and fault-injection testing of the validation engines.

   - Naive, Linear, Indexed and Parallel must agree on arbitrary
     (schema, graph) pairs, including garbage graphs (fuzz) and graphs
     with nodes/edges removed after generation (exercises id-sparse
     universes).
   - Conformant graphs generated from random schemas must validate.
   - Every Corruption mutator must make its targeted rule fire, in all
     engines.
   - All five engines — the string-level Naive oracle, the three compiled
     plan consumers (Linear, Indexed, Parallel) and Incremental — must
     produce byte-identical normalized reports, messages included.
   - Float key properties with nan and -0.0 must group consistently in
     DS7 across all engines. *)

module G = Graphql_pg.Property_graph
module Value = Graphql_pg.Value
module Val = Graphql_pg.Validate
module Vi = Graphql_pg.Violation
module Schema_gen = Graphql_pg.Schema_gen
module Instance_gen = Graphql_pg.Instance_gen
module Corruption = Graphql_pg.Corruption

let check_bool = Alcotest.(check bool)

(* Four-way agreement.  Parallel runs with 2 domains so that sharding,
   cross-domain merging and normalization are actually exercised even on
   single-core CI hosts. *)
let engines_agree sch g =
  let naive = (Val.check ~engine:Val.Naive sch g).Val.violations in
  let linear = (Val.check ~engine:Val.Linear sch g).Val.violations in
  let indexed = (Val.check ~engine:Val.Indexed sch g).Val.violations in
  let parallel = (Val.check ~engine:Val.Parallel ~domains:2 sch g).Val.violations in
  List.equal Vi.equal naive linear
  && List.equal Vi.equal linear indexed
  && List.equal Vi.equal indexed parallel

(* All five engines must render the same normalized report byte for byte:
   the compiled kernels and the incremental revalidator emit the same
   message strings as the string-level specification. *)
let reports_byte_identical sch g =
  let of_engine engine =
    List.map Vi.to_string (Val.check ~engine sch g).Val.violations
  in
  let naive = of_engine Val.Naive in
  let incremental =
    List.map Vi.to_string (Graphql_pg.Incremental.violations (Graphql_pg.Incremental.create sch g))
  in
  List.for_all
    (List.equal String.equal naive)
    [
      of_engine Val.Linear;
      of_engine Val.Indexed;
      List.map Vi.to_string
        (Val.check ~engine:Val.Parallel ~domains:2 sch g).Val.violations;
      incremental;
    ]

let seeded_rng seed = Random.State.make [| seed; 0xBEEF |]

(* Remove roughly 1/8 of the nodes and edges of a generated graph, so the
   surviving id spaces are sparse (ids are no longer contiguous and the
   arrays snapshotted by the engines skip holes). *)
let decimate rng g =
  let g =
    List.fold_left
      (fun g e -> if Random.State.int rng 8 = 0 then G.remove_edge g e else g)
      g (G.edges g)
  in
  List.fold_left
    (fun g v -> if Random.State.int rng 8 = 0 then G.remove_node g v else g)
    g (G.nodes g)

let prop_engines_agree_on_fuzz =
  QCheck2.Test.make ~name:"Naive = Linear = Indexed = Parallel on fuzz graphs" ~count:150
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = seeded_rng seed in
      let sch = Schema_gen.random_schema rng in
      let g = Instance_gen.fuzz rng sch ~max_nodes:10 in
      engines_agree sch g)

let prop_engines_agree_on_social =
  QCheck2.Test.make ~name:"all five engines agree on corrupted social graphs"
    ~count:10
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sch = Graphql_pg.Social.schema () in
      let g = Graphql_pg.Social.generate ~seed ~persons:30 () in
      let g = Graphql_pg.Social.corrupt_uniformly ~seed ~rate:0.1 sch g in
      engines_agree sch g && reports_byte_identical sch g)

let prop_engines_agree_on_decimated =
  QCheck2.Test.make ~name:"engines agree on graphs with removed nodes/edges"
    ~count:40
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sch = Graphql_pg.Social.schema () in
      let g = Graphql_pg.Social.generate ~seed ~persons:20 () in
      let g = decimate (seeded_rng seed) g in
      engines_agree sch g && reports_byte_identical sch g)

let prop_conformant_graphs_validate =
  QCheck2.Test.make ~name:"Instance_gen.conformant graphs strongly satisfy" ~count:40
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = seeded_rng seed in
      let sch = Schema_gen.random_schema rng in
      match Instance_gen.conformant ~target_nodes:20 sch with
      | Some g -> Val.conforms sch g && engines_agree sch g
      | None -> true (* all object types unsatisfiable within bounds: fine *))

(* DS7 with tricky floats: nan = nan and -0.0 = 0.0 under Value.equal, so
   two nodes whose key property is nan (or -0.0 vs 0.0) collide.  The
   parallel engine groups keys by a serialized form, which must agree with
   Value.equal on these edge cases. *)
let float_key_schema () =
  Graphql_pg.schema_of_string_exn
    "type P @key(fields: [\"x\"]) { x: Float }"

let float_key_values =
  [ Some (Value.Float Float.nan);
    Some (Value.Float (-0.0));
    Some (Value.Float 0.0);
    Some (Value.Float 1.5);
    Some (Value.Int 3);
    None (* property absent *) ]

let prop_engines_agree_on_float_keys =
  QCheck2.Test.make ~name:"engines agree on nan/-0.0 float keys (DS7)" ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = seeded_rng seed in
      let sch = float_key_schema () in
      let n = 4 + Random.State.int rng 6 in
      let g = ref G.empty in
      for _ = 1 to n do
        let props =
          match List.nth float_key_values (Random.State.int rng 6) with
          | Some v -> [ ("x", v) ]
          | None -> []
        in
        let g', _ = G.add_node !g ~label:"P" ~props () in
        g := g'
      done;
      engines_agree sch !g && reports_byte_identical sch !g)

let test_float_key_collisions () =
  let sch = float_key_schema () in
  let add g props = fst (G.add_node g ~label:"P" ~props ()) in
  (* nan vs nan collides; -0.0 vs 0.0 collides; nan vs 0.0 does not *)
  let g = add (add G.empty [ ("x", Value.Float Float.nan) ]) [ ("x", Value.Float Float.nan) ] in
  let fired engine = List.mem Vi.DS7 (Val.violated_rules (Val.check ~engine sch g)) in
  check_bool "nan/nan fires DS7 (naive)" true (fired Val.Naive);
  check_bool "nan/nan fires DS7 (indexed)" true (fired Val.Indexed);
  check_bool "nan/nan fires DS7 (parallel)" true (fired Val.Parallel);
  let g2 = add (add G.empty [ ("x", Value.Float (-0.0)) ]) [ ("x", Value.Float 0.0) ] in
  let fired2 engine = List.mem Vi.DS7 (Val.violated_rules (Val.check ~engine sch g2)) in
  check_bool "-0.0/0.0 fires DS7 (naive)" true (fired2 Val.Naive);
  check_bool "-0.0/0.0 fires DS7 (parallel)" true (fired2 Val.Parallel);
  let g3 = add (add G.empty [ ("x", Value.Float Float.nan) ]) [ ("x", Value.Float 0.0) ] in
  let fired3 engine = List.mem Vi.DS7 (Val.violated_rules (Val.check ~engine sch g3)) in
  check_bool "nan/0.0 does not fire DS7 (naive)" false (fired3 Val.Naive);
  check_bool "nan/0.0 does not fire DS7 (parallel)" false (fired3 Val.Parallel)

(* fault injection: per-rule mutators *)
let corruption_case rule =
  let name = Printf.sprintf "corruption fires %s" (Vi.rule_name rule) in
  QCheck2.Test.make ~name ~count:25
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sch = Graphql_pg.Social.schema () in
      let g = Graphql_pg.Social.generate ~seed:(seed mod 97) ~persons:12 () in
      let rng = seeded_rng seed in
      match Corruption.mutate rule sch rng g with
      | None -> QCheck2.assume_fail () (* mutator not applicable on this graph *)
      | Some g' ->
        let report = Val.check ~engine:Val.Indexed sch g' in
        let fired = List.mem rule (Val.violated_rules report) in
        fired && engines_agree sch g')

let test_mutate_any_always_invalidates () =
  let sch = Graphql_pg.Social.schema () in
  let g = Graphql_pg.Social.generate ~persons:15 () in
  let rng = seeded_rng 5 in
  for _ = 1 to 20 do
    match Corruption.mutate_any sch rng g with
    | Some (rule, g') ->
      let report = Val.check sch g' in
      check_bool
        (Printf.sprintf "mutation %s invalidates" (Vi.rule_name rule))
        true
        (List.mem rule (Val.violated_rules report))
    | None -> Alcotest.fail "no mutator applicable on a rich graph"
  done

let suite =
  [
    QCheck_alcotest.to_alcotest prop_engines_agree_on_fuzz;
    QCheck_alcotest.to_alcotest prop_engines_agree_on_social;
    QCheck_alcotest.to_alcotest prop_engines_agree_on_decimated;
    QCheck_alcotest.to_alcotest prop_conformant_graphs_validate;
    QCheck_alcotest.to_alcotest prop_engines_agree_on_float_keys;
    Alcotest.test_case "DS7 float key edge cases" `Quick test_float_key_collisions;
  ]
  @ List.map (fun rule -> QCheck_alcotest.to_alcotest (corruption_case rule)) Vi.all_rules
  @ [ Alcotest.test_case "mutate_any invalidates" `Quick test_mutate_any_always_invalidates ]
