(* Error recovery in the SDL parser.

   - A document with several independent syntax errors reports all of
     them in one run, and still yields the definitions that did parse.
   - On documents the plain parser accepts, recovery returns the same
     document and no errors; on documents it rejects, the plain parser's
     error is the first one recovery reports.
   - Recovery terminates on random bytes and on SDL token soup (the
     qcheck runs finishing is the termination evidence).
   - The schema builder surfaces every recovered error, one per line. *)

module P = Graphql_pg.Sdl.Parser
module Printer = Graphql_pg.Sdl.Printer
module Source = Graphql_pg.Sdl.Source

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let three_error_doc =
  "type A { x: }\n\
   type B { y: String! @required }\n\
   enum E { true }\n\
   scalar S @@\n\
   type C { z: Int }\n"

let test_three_errors () =
  let doc, errs = P.parse_with_recovery three_error_doc in
  check_int "three diagnostics" 3 (List.length errs);
  check_int "two definitions recovered" 2 (List.length doc)

let test_builder_reports_all () =
  match Graphql_pg.Of_ast.parse three_error_doc with
  | Ok _ -> Alcotest.fail "a document with syntax errors must not build"
  | Error msg ->
    check_int "one line per error" 3 (List.length (String.split_on_char '\n' msg))

let test_empty_document () =
  let doc, errs = P.parse_with_recovery "  # only a comment\n" in
  check_int "no definitions" 0 (List.length doc);
  (match errs with
  | [ e ] -> check_bool "empty-document parity" true (e.Source.message = "empty document")
  | _ -> Alcotest.fail "expected exactly the empty-document error");
  match P.parse "  # only a comment\n" with
  | Ok _ -> Alcotest.fail "plain parser must also reject"
  | Error e -> check_bool "same message" true (e.Source.message = "empty document")

let test_lex_error_not_recovered () =
  let doc, errs = P.parse_with_recovery "type A { x: Int }\n\x00" in
  check_int "no definitions on lex error" 0 (List.length doc);
  check_int "one lexer diagnostic" 1 (List.length errs)

let gen_bytes =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 200))

let gen_sdl_ish =
  QCheck2.Gen.(
    map (String.concat " ")
      (list_size (int_bound 40)
         (oneofl
            [
              "type"; "interface"; "union"; "enum"; "scalar"; "input"; "schema"; "extend";
              "directive"; "on"; "implements"; "{"; "}"; "("; ")"; "["; "]"; "!"; "|"; "&";
              "="; ":"; "@"; "..."; "\"txt\""; "\"\"\"block\"\"\""; "3"; "-7"; "1.5"; "$v";
              "Name"; "x"; "#c"; ","; "query"; "fragment"; "mutation";
            ])))

let prop_agrees_with_plain gen name =
  QCheck2.Test.make ~name ~count:500 gen (fun src ->
      let doc, errs = P.parse_with_recovery src in
      match P.parse src with
      | Ok plain ->
        (* recovery must be invisible on well-formed documents *)
        errs = []
        && String.equal
             (Printer.document_to_string plain)
             (Printer.document_to_string doc)
      | Error e -> (
        match errs with
        | first :: _ -> first = e
        | [] -> false))

let prop_terminates =
  QCheck2.Test.make ~name:"recovery terminates on random bytes" ~count:500 gen_bytes
    (fun src ->
      let _ = P.parse_with_recovery src in
      true)

let suite =
  [
    Alcotest.test_case "three errors, one run" `Quick test_three_errors;
    Alcotest.test_case "schema builder lists every error" `Quick test_builder_reports_all;
    Alcotest.test_case "empty document parity" `Quick test_empty_document;
    Alcotest.test_case "lexer errors are not recovered" `Quick test_lex_error_not_recovered;
    QCheck_alcotest.to_alcotest
      (prop_agrees_with_plain gen_sdl_ish "recovery agrees with the plain parser (token soup)");
    QCheck_alcotest.to_alcotest
      (prop_agrees_with_plain gen_bytes "recovery agrees with the plain parser (bytes)");
    QCheck_alcotest.to_alcotest prop_terminates;
  ]
