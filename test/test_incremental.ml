(* Incremental validation: unit behaviour and differential testing against
   the batch engines over random update sequences. *)

module G = Graphql_pg.Property_graph
module V = Graphql_pg.Value
module Inc = Graphql_pg.Incremental
module Val = Graphql_pg.Validate
module Vi = Graphql_pg.Violation

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let schema =
  Graphql_pg.schema_of_string_exn
    {|
type A @key(fields: ["k"]) {
  k: ID
  name: String! @required
  single: B
  many: [B] @distinct
  self: [A] @noLoops
}
type B {
  owner: [A] @requiredForTarget @uniqueForTarget
}
|}

(* the incremental state must always agree with a fresh batch validation,
   byte for byte: region-based revalidation may not change which message
   survives normalization *)
let consistent_with sch t =
  let batch = (Val.check ~engine:Val.Indexed sch (Inc.graph t)).Val.violations in
  List.equal String.equal
    (List.map Vi.to_string (Inc.violations t))
    (List.map Vi.to_string batch)

let assert_consistent t = check_bool "incremental = batch" true (consistent_with schema t)

let rules t = List.sort_uniq compare (List.map (fun v -> v.Vi.rule) (Inc.violations t))

let test_lifecycle () =
  let t = Inc.create schema G.empty in
  check_bool "empty valid" true (Inc.is_valid t);
  (* a bare A node misses its required name; as a B-target nothing yet *)
  let t, a = Inc.add_node t ~label:"A" () in
  assert_consistent t;
  check_bool "DS5 fires" true (List.mem Vi.DS5 (rules t));
  let t = Inc.set_node_prop t a "name" (V.String "a") in
  assert_consistent t;
  (* A still needs an incoming owner edge (@requiredForTarget on B.owner) *)
  check_bool "DS4 pending" true (List.mem Vi.DS4 (rules t));
  let t, b = Inc.add_node t ~label:"B" () in
  assert_consistent t;
  let t, e = Inc.add_edge t ~label:"owner" b a in
  assert_consistent t;
  ignore e;
  check_bool "valid now" true (Inc.is_valid t);
  (* duplicate incoming owner violates @uniqueForTarget *)
  let t, b2 = Inc.add_node t ~label:"B" () in
  let t, e2 = Inc.add_edge t ~label:"owner" b2 a in
  assert_consistent t;
  check_bool "DS3 fires" true (List.mem Vi.DS3 (rules t));
  let t = Inc.remove_edge t e2 in
  assert_consistent t;
  check_bool "DS3 repaired" true (not (List.mem Vi.DS3 (rules t)));
  ignore b2;
  (* remove the node cascading its edges *)
  let t = Inc.remove_node t b in
  assert_consistent t;
  ignore b

let test_key_updates () =
  let t = Inc.create schema G.empty in
  let t, a1 = Inc.add_node t ~label:"A" ~props:[ ("k", V.Id "x"); ("name", V.String "n") ] () in
  let t, a2 = Inc.add_node t ~label:"A" ~props:[ ("k", V.Id "x"); ("name", V.String "n") ] () in
  assert_consistent t;
  check_bool "key collision" true (List.mem Vi.DS7 (rules t));
  let t = Inc.set_node_prop t a2 "k" (V.Id "y") in
  assert_consistent t;
  check_bool "collision repaired" true (not (List.mem Vi.DS7 (rules t)));
  let t = Inc.remove_node_prop t a1 "k" in
  let t = Inc.remove_node_prop t a2 "k" in
  assert_consistent t;
  (* both absent collide again (Definition 5.2 as written) *)
  check_bool "absent-absent collision" true (List.mem Vi.DS7 (rules t))

let test_relabel () =
  let t = Inc.create schema G.empty in
  let t, a = Inc.add_node t ~label:"A" ~props:[ ("name", V.String "n") ] () in
  let t, b = Inc.add_node t ~label:"B" () in
  let t, _ = Inc.add_edge t ~label:"owner" b a in
  let t, _ = Inc.add_edge t ~label:"single" a b in
  assert_consistent t;
  (* relabeling b invalidates the owner edge's justification and the
     single edge's target typing *)
  let t = Inc.relabel_node t b "Ghost" in
  assert_consistent t;
  check_bool "SS1 + WS3" true
    (List.mem Vi.SS1 (rules t) && List.mem Vi.WS3 (rules t));
  let t = Inc.relabel_node t b "B" in
  assert_consistent t;
  check_bool "repaired" true (not (List.mem Vi.SS1 (rules t)))

let test_edge_props () =
  let sch =
    Graphql_pg.schema_of_string_exn
      "type A { rel(w: Float!): [B] }\ntype B { x: Int }"
  in
  let t = Inc.create sch G.empty in
  let t, a = Inc.add_node t ~label:"A" () in
  let t, b = Inc.add_node t ~label:"B" () in
  let t, e = Inc.add_edge t ~label:"rel" a b in
  let t = Inc.set_edge_prop t e "w" (V.String "heavy") in
  check_bool "WS2" true (List.mem Vi.WS2 (rules t));
  let t = Inc.set_edge_prop t e "w" (V.Float 1.0) in
  check_bool "repaired" true (Inc.is_valid t);
  let t = Inc.set_edge_prop t e "junk" (V.Int 1) in
  check_bool "SS3" true (List.mem Vi.SS3 (rules t));
  let t = Inc.remove_edge_prop t e "junk" in
  check_bool "valid" true (Inc.is_valid t);
  let batch = (Val.check sch (Inc.graph t)).Val.violations in
  check_int "batch agrees" 0 (List.length batch)

(* differential: random update sequences stay consistent with batch *)
let prop_random_updates =
  QCheck2.Test.make ~name:"incremental = batch over random update sequences" ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xD1FF |] in
      let sch = Graphql_pg.Schema_gen.random_schema rng in
      let t = ref (Inc.create sch G.empty) in
      let step () =
        let g = Inc.graph !t in
        let nodes = G.nodes g in
        let pick l = List.nth l (Random.State.int rng (List.length l)) in
        match Random.State.int rng 10 with
        | 0 | 1 ->
          let labels = Graphql_pg.Schema.object_names sch @ [ "Ghost" ] in
          let t', _ = Inc.add_node !t ~label:(pick labels) () in
          t := t'
        | 2 when nodes <> [] ->
          let v = pick nodes and u = pick nodes in
          let declared =
            List.map fst (Graphql_pg.Schema.fields sch (G.node_label g v)) @ [ "junk" ]
          in
          let t', _ = Inc.add_edge !t ~label:(pick declared) v u in
          t := t'
        | 3 when nodes <> [] ->
          let v = pick nodes in
          t := Inc.set_node_prop !t v (pick [ "a0"; "a1"; "k"; "zzz" ])
                 (pick [ V.Int 1; V.String "s"; V.List [ V.Int 1 ]; V.Bool true ])
        | 4 when nodes <> [] -> t := Inc.remove_node_prop !t (pick nodes) "a0"
        | 5 when G.edges g <> [] -> t := Inc.remove_edge !t (pick (G.edges g))
        | 6 when nodes <> [] -> t := Inc.remove_node !t (pick nodes)
        | 7 when nodes <> [] ->
          t := Inc.relabel_node !t (pick nodes)
                 (pick (Graphql_pg.Schema.object_names sch @ [ "Ghost" ]))
        | 8 when G.edges g <> [] ->
          t := Inc.set_edge_prop !t (pick (G.edges g))
                 (pick [ "a0"; "w"; "zzz" ])
                 (pick [ V.Int 1; V.Float 0.5; V.String "s"; V.Bool true ])
        | 9 when G.edges g <> [] ->
          t := Inc.remove_edge_prop !t (pick (G.edges g)) (pick [ "a0"; "w"; "zzz" ])
        | _ -> ()
      in
      let ok = ref true in
      for _ = 1 to 25 do
        step ();
        if not (consistent_with sch !t) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "lifecycle" `Quick test_lifecycle;
    Alcotest.test_case "key updates" `Quick test_key_updates;
    Alcotest.test_case "relabel" `Quick test_relabel;
    Alcotest.test_case "edge properties" `Quick test_edge_props;
    QCheck_alcotest.to_alcotest prop_random_updates;
  ]
