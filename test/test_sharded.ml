(* The sharded engine family: partition correctness and the engine-
   agreement differential.

   - Partition invariants: the shards tile [0, n), every edge is owned
     by exactly one shard, and the frontier is exactly the cross-shard
     edge set.
   - qcheck differential: the sharded engine's report is byte-identical
     to the indexed engine's across shards in {1, 2, 3, 8} x domains in
     {1, 2, 4}, on uniformly corrupted and decimated social graphs.
   - The out-of-core path: a snapshot written to disk, reopened with
     [open_mapped] and validated by the streaming pipeline (one shard's
     properties resident at a time) must produce the same bytes again.
   - Governed runs: a finite budget yields a partial report whose
     violations are a subset of the full report's; [run_tasks] on a
     stopped governor runs nothing at all.
   - CLI: --domains 0, --shards 0 and --shards with a non-sharded
     engine are CLI001 usage errors (exit 2), not silent clamps.       *)

module G = Graphql_pg.Property_graph
module Val = Graphql_pg.Validate
module Vi = Graphql_pg.Violation
module Gov = Graphql_pg.Governor
module Snapshot = Graphql_pg.Snapshot
module Sio = Graphql_pg.Snapshot_io
module Partition = Graphql_pg.Partition
module Plan = Graphql_pg.Plan
module Parallel = Graphql_pg.Parallel

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seeded_rng seed = Random.State.make [| seed; 0x5AAD |]

let decimate rng g =
  let g =
    List.fold_left
      (fun g e -> if Random.State.int rng 8 = 0 then G.remove_edge g e else g)
      g (G.edges g)
  in
  List.fold_left
    (fun g v -> if Random.State.int rng 8 = 0 then G.remove_node g v else g)
    g (G.nodes g)

let corrupted seed =
  let sch = Graphql_pg.Social.schema () in
  let g = Graphql_pg.Social.generate ~seed ~persons:30 () in
  let g = Graphql_pg.Social.corrupt_uniformly ~seed ~rate:0.1 sch g in
  (sch, decimate (seeded_rng seed) g)

let rendered report = List.map Vi.to_string report.Val.violations

(* ---- partition invariants ---- *)

let test_partition_invariants () =
  let sch = Graphql_pg.Social.schema () in
  let g = Graphql_pg.Social.generate ~seed:7 ~persons:40 () in
  let plan = Val.compile sch in
  let snap = Snapshot.build (Plan.symtab plan) g in
  let n = snap.Snapshot.n and m = snap.Snapshot.m in
  List.iter
    (fun shards ->
      let part = Partition.make snap ~shards in
      check_int "shard count" shards (Partition.shard_count part);
      (* shards tile the node range *)
      let covered = ref 0 in
      for s = 0 to shards - 1 do
        let sh = Partition.shard part s in
        check_int "contiguous" !covered sh.Partition.node_lo;
        check_bool "ordered" true (sh.Partition.node_lo <= sh.Partition.node_hi);
        covered := sh.Partition.node_hi;
        (* sub-view lengths match the range *)
        check_int "node view len" (sh.Partition.node_hi - sh.Partition.node_lo)
          (Bigarray.Array1.dim sh.Partition.node_label);
        check_int "adj view len" (sh.Partition.adj_hi - sh.Partition.adj_lo)
          (Bigarray.Array1.dim sh.Partition.out_adj)
      done;
      check_int "tiles [0,n)" n !covered;
      (* every edge is owned exactly once *)
      let owned = Array.make m 0 in
      for s = 0 to shards - 1 do
        Array.iter (fun e -> owned.(e) <- owned.(e) + 1) (Partition.owned_edges part s)
      done;
      Array.iteri (fun e c -> check_int (Printf.sprintf "edge %d owned once" e) 1 c) owned;
      (* the frontier is exactly the cross-shard edge set *)
      let cross e =
        Partition.shard_of_node part snap.Snapshot.edge_src.{e}
        <> Partition.shard_of_node part snap.Snapshot.edge_tgt.{e}
      in
      let expected = List.filter cross (List.init m Fun.id) in
      check_bool "frontier = cross edges" true
        (expected = Array.to_list (Partition.frontier_edges part));
      List.iter
        (fun e ->
          check_bool "cross-out flagged" true
            (Partition.has_cross_out part snap.Snapshot.edge_src.{e});
          check_bool "cross-in flagged" true
            (Partition.has_cross_in part snap.Snapshot.edge_tgt.{e}))
        expected)
    [ 1; 2; 3; 8; 100 ]

(* ---- the differential: sharded == indexed, byte for byte ---- *)

let shard_grid = [ 1; 2; 3; 8 ]
let domain_grid = [ 1; 2; 4 ]

let prop_sharded_byte_identical =
  QCheck2.Test.make
    ~name:"sharded == indexed (bytes) over shards {1,2,3,8} x domains {1,2,4}" ~count:10
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sch, g = corrupted seed in
      let baseline = rendered (Val.check ~engine:Val.Indexed sch g) in
      List.for_all
        (fun shards ->
          List.for_all
            (fun domains ->
              baseline
              = rendered (Val.check ~engine:Val.Sharded ~domains ~shards sch g))
            domain_grid)
        shard_grid)

(* ---- the out-of-core path: snapshot file -> mapped -> streamed ---- *)

let with_temp_file f =
  let path = Filename.temp_file "gpgs_sharded" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let prop_mapped_stream_byte_identical =
  QCheck2.Test.make ~name:"mapped streaming pipeline == indexed (bytes)" ~count:8
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sch, g = corrupted seed in
      let plan = Val.compile sch in
      let baseline = rendered (Val.check_compiled ~engine:Val.Indexed plan g) in
      let snap = Snapshot.build (Plan.symtab plan) g in
      with_temp_file (fun path ->
          (match Sio.write (Plan.symtab plan) snap path with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write: %a" Sio.pp_error e);
          List.for_all
            (fun shards ->
              match Sio.open_mapped (Plan.symtab plan) path with
              | Error e -> Alcotest.failf "open_mapped: %a" Sio.pp_error e
              | Ok md ->
                Fun.protect
                  ~finally:(fun () -> Sio.close_mapped md)
                  (fun () ->
                    match Val.check_mapped ~shards plan md with
                    | Ok report ->
                      report.Val.engine = Val.Sharded && rendered report = baseline
                    | Error e -> Alcotest.failf "check_mapped: %a" Sio.pp_error e))
            [ 1; 2; 5 ]))

(* ---- governed runs ---- *)

let subset ~full part = List.for_all (fun v -> List.exists (Vi.equal v) full) part

let test_governed_partial_subset () =
  (* ten nodes each missing a @required property: >= 10 violations *)
  let sch = Graphql_pg.schema_of_string_exn "type A { x: Int @required }" in
  let g =
    let rec go g i = if i = 10 then g else go (fst (G.add_node g ~label:"A" ())) (i + 1) in
    go G.empty 0
  in
  let full = (Val.check ~engine:Val.Sharded sch g).Val.violations in
  check_int "full run finds all" 10 (List.length full);
  List.iter
    (fun shards ->
      let report =
        Val.check ~engine:Val.Sharded ~domains:2 ~shards
          ~gov:(Gov.make ~max_violations:3 ()) sch g
      in
      check_bool "partial" false report.Val.complete;
      check_bool "nonempty" true (report.Val.violations <> []);
      check_bool "subset of full" true (subset ~full report.Val.violations))
    [ 1; 3; 8 ]

let test_governed_mapped_partial_subset () =
  let sch = Graphql_pg.schema_of_string_exn "type A { x: Int @required }" in
  let g =
    let rec go g i = if i = 10 then g else go (fst (G.add_node g ~label:"A" ())) (i + 1) in
    go G.empty 0
  in
  let plan = Val.compile sch in
  let full = (Val.check_compiled ~engine:Val.Sharded plan g).Val.violations in
  let snap = Snapshot.build (Plan.symtab plan) g in
  with_temp_file (fun path ->
      (match Sio.write (Plan.symtab plan) snap path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %a" Sio.pp_error e);
      match Sio.open_mapped (Plan.symtab plan) path with
      | Error e -> Alcotest.failf "open_mapped: %a" Sio.pp_error e
      | Ok md ->
        Fun.protect
          ~finally:(fun () -> Sio.close_mapped md)
          (fun () ->
            match
              Val.check_mapped ~shards:5 ~gov:(Gov.make ~max_violations:3 ()) plan md
            with
            | Ok report ->
              check_bool "partial" false report.Val.complete;
              check_bool "subset of full" true (subset ~full report.Val.violations)
            | Error e -> Alcotest.failf "check_mapped: %a" Sio.pp_error e))

let test_run_tasks_stopped_spawns_nothing () =
  let ran = Atomic.make 0 in
  let task () =
    Atomic.incr ran;
    []
  in
  let run = Gov.start (Gov.make ~max_violations:1 ()) in
  Gov.stop_now run;
  let result = Parallel.run_tasks ~gov:run ~domains:4 [ task; task; task ] in
  check_bool "empty result" true (result = []);
  check_int "no task ran" 0 (Atomic.get ran);
  (* and the empty list short-circuits too, governed or not *)
  check_bool "empty tasks" true (Parallel.run_tasks ~domains:4 [] = [])

let test_bad_counts_raise () =
  let sch = Graphql_pg.Social.schema () in
  let g = Graphql_pg.Social.generate ~seed:3 ~persons:5 () in
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check_bool "domains 0" true
    (raises (fun () -> Val.check ~engine:Val.Parallel ~domains:0 sch g));
  check_bool "sharded domains -1" true
    (raises (fun () -> Val.check ~engine:Val.Sharded ~domains:(-1) sch g));
  check_bool "shards 0" true
    (raises (fun () -> Val.check ~engine:Val.Sharded ~shards:0 sch g))

(* ---- CLI: CLI001 on bad counts, sharded end to end ---- *)

let test_dir = Filename.dirname Sys.executable_name
let in_repo rel = Filename.concat test_dir rel

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_cli args =
  let out = Filename.temp_file "gpgs_sharded" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>/dev/null"
      (Filename.quote (in_repo "../bin/gpgs.exe"))
      args (Filename.quote out)
  in
  let code =
    match Sys.command cmd with c when c land 0xff = 0 -> c lsr 8 | c -> c
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let test_cli_bad_counts () =
  let schema = in_repo "../examples/movies.graphql" in
  let graph = in_repo "../examples/movies.pgf" in
  List.iter
    (fun flags ->
      let code, out =
        run_cli (Printf.sprintf "validate %s %s %s --format json" schema graph flags)
      in
      check_int (flags ^ ": exit") 2 code;
      check_bool (flags ^ ": CLI001") true
        (let module J = Graphql_pg.Json in
         match J.of_string out with
         | Ok doc -> (
           match J.member "diagnostics" doc with
           | J.List ds ->
             List.exists (fun d -> J.member "code" d = J.String "CLI001") ds
           | _ -> false)
         | Error _ -> false))
    [
      "--engine sharded --domains 0";
      "--engine sharded --shards 0";
      "--engine sharded --shards=-3";
      "--engine indexed --shards 2";
    ];
  (* batch shares the validation *)
  let code, _ = run_cli (Printf.sprintf "batch %s %s --shards 0" schema graph) in
  check_int "batch --shards 0" 2 code

let test_cli_sharded_matches_indexed () =
  let schema = in_repo "../examples/movies.graphql" in
  let graph = in_repo "../examples/movies.pgf" in
  let code_i, out_i =
    run_cli (Printf.sprintf "validate %s %s --engine indexed" schema graph)
  in
  let code_s, out_s =
    run_cli
      (Printf.sprintf "validate %s %s --engine sharded --domains 2 --shards 3" schema
         graph)
  in
  check_int "same exit" code_i code_s;
  (* identical up to the engine name in the header line *)
  let tail s = List.tl (String.split_on_char '\n' s) in
  check_bool "same violation lines" true (tail out_i = tail out_s)

let suite =
  [
    Alcotest.test_case "partition invariants" `Quick test_partition_invariants;
    QCheck_alcotest.to_alcotest prop_sharded_byte_identical;
    QCheck_alcotest.to_alcotest prop_mapped_stream_byte_identical;
    Alcotest.test_case "governed runs are subsets" `Quick test_governed_partial_subset;
    Alcotest.test_case "governed mapped runs are subsets" `Quick
      test_governed_mapped_partial_subset;
    Alcotest.test_case "run_tasks on a stopped governor spawns nothing" `Quick
      test_run_tasks_stopped_spawns_nothing;
    Alcotest.test_case "domain/shard counts below 1 raise" `Quick test_bad_counts_raise;
    Alcotest.test_case "CLI001 on bad counts" `Quick test_cli_bad_counts;
    Alcotest.test_case "gpgs validate --engine sharded matches indexed" `Quick
      test_cli_sharded_matches_indexed;
  ]
