(* Serialization round-trips: [parse (print g)] must reproduce [g] for
   both PGF and GraphML, over random graphs that exercise the awkward
   corners — empty property maps, empty lists, nan / -0.0 / infinite
   floats, XML-hostile strings, and properties used at several kinds
   (which GraphML degrades to pg.kind="mixed"). *)

module G = Graphql_pg.Property_graph
module V = Graphql_pg.Value
module Pgf = Graphql_pg.Pgf
module Graphml = Graphql_pg.Graphml

let check_bool = Alcotest.(check bool)

let pgf_ok src =
  match Pgf.parse src with
  | Ok g -> g
  | Error e -> Alcotest.failf "PGF error: %a" Pgf.pp_error e

let graphml_ok src =
  match Graphml.parse src with
  | Ok g -> g
  | Error e -> Alcotest.failf "GraphML error: %a" Graphml.pp_error e

(* ------------------------------------------------------------------ *)
(* Generator.  Graphs are built with add_node/add_edge only, so ids are
   dense and in insertion order and both formats promise exact equality. *)

let tricky_floats =
  [ Float.nan; -0.0; 0.0; Float.infinity; Float.neg_infinity; 1.5; -2.25e-3; 1e300; 0.1 ]

(* GraphML's scanner drops whitespace-only text nodes, so a string (or ID)
   value that is pure whitespace cannot round-trip; nothing else can
   produce one either, so the generator avoids them. *)
let sanitize s = if s <> "" && String.trim s = "" then "w" ^ s else s

let value_gen =
  let open QCheck2.Gen in
  let atom =
    frequency
      [
        (3, map (fun i -> V.Int i) small_signed_int);
        (2, map (fun f -> V.Float f) (oneofl tricky_floats));
        (1, map (fun f -> V.Float f) (float_bound_inclusive 1000.0));
        (3, map (fun s -> V.String (sanitize s)) (small_string ~gen:printable));
        (1, return (V.String ""));
        (1, map (fun b -> V.Bool b) bool);
        (2, map (fun s -> V.Id (sanitize s)) (small_string ~gen:printable));
        (1, map (fun i -> V.Enum (Printf.sprintf "E%d" (abs i))) small_signed_int);
      ]
  in
  QCheck2.Gen.oneof
    [ atom; map (fun l -> V.List l) (list_size (int_bound 3) atom) ]

let graph_gen =
  let open QCheck2.Gen in
  let label = map (fun i -> Printf.sprintf "L%d" (abs i mod 4)) small_signed_int in
  (* few names, many kinds: forces pg.kind="mixed" keys in GraphML *)
  let props =
    frequency
      [
        (1, return []); (* empty property map *)
        ( 4,
          list_size (int_range 1 3)
            (pair (map (fun i -> Printf.sprintf "p%d" (abs i mod 4)) small_signed_int) value_gen)
        );
      ]
  in
  let* n = int_range 1 8 in
  let* node_specs = list_repeat n (pair label props) in
  let* edge_specs =
    list_size (int_bound 10) (tup4 (int_bound (n - 1)) (int_bound (n - 1)) label props)
  in
  return
    (let g = ref G.empty in
     let nodes =
       List.map
         (fun (label, props) ->
           let g', v = G.add_node !g ~label ~props () in
           g := g';
           v)
         node_specs
     in
     let nodes = Array.of_list nodes in
     List.iter
       (fun (i, j, label, props) ->
         let g', _ = G.add_edge !g ~label ~props nodes.(i) nodes.(j) in
         g := g')
       edge_specs;
     !g)

let prop_pgf_round_trip =
  QCheck2.Test.make ~name:"PGF round-trip with tricky values" ~count:300 graph_gen
    (fun g -> match Pgf.parse (Pgf.print g) with Ok g' -> G.equal g g' | Error _ -> false)

let prop_graphml_round_trip =
  QCheck2.Test.make ~name:"GraphML round-trip with tricky values" ~count:300 graph_gen
    (fun g ->
      match Graphml.parse (Graphml.to_string g) with
      | Ok g' -> G.equal g g'
      | Error _ -> false)

(* values alone: bit-exact for floats, not just Value.equal (which
   identifies -0.0 with 0.0) *)
let bit_exact v v' =
  match (v, v') with
  | V.Float f, V.Float f' -> Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')
  | _ -> V.equal v v'

let prop_value_round_trip =
  QCheck2.Test.make ~name:"PGF value literal round-trip is bit-exact" ~count:500 value_gen
    (fun v ->
      match Pgf.value_of_string (Pgf.value_to_string v) with
      | Ok v' -> bit_exact v v'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Directed unit cases *)

let test_empty_graph () =
  check_bool "pgf" true (G.equal G.empty (pgf_ok (Pgf.print G.empty)));
  check_bool "graphml" true (G.equal G.empty (graphml_ok (Graphml.to_string G.empty)))

let test_empty_property_maps () =
  let g, a = G.add_node G.empty ~label:"A" () in
  let g, b = G.add_node g ~label:"B" () in
  let g, _ = G.add_edge g ~label:"r" a b in
  check_bool "pgf" true (G.equal g (pgf_ok (Pgf.print g)));
  check_bool "graphml" true (G.equal g (graphml_ok (Graphml.to_string g)))

let test_nonfinite_floats () =
  let props =
    [
      ("nan", V.Float Float.nan);
      ("negzero", V.Float (-0.0));
      ("inf", V.Float Float.infinity);
      ("neginf", V.Float Float.neg_infinity);
      ("listed", V.List [ V.Float Float.nan; V.Float (-0.0) ]);
    ]
  in
  let g, _ = G.add_node G.empty ~label:"N" ~props () in
  let bits v = match v with Some (V.Float f) -> Int64.bits_of_float f | _ -> Int64.zero in
  let check_graph g' =
    check_bool "equal" true (G.equal g g');
    let n = List.hd (G.nodes g') in
    check_bool "-0.0 stays negative" true
      (Int64.equal (bits (G.node_prop g' n "negzero")) (Int64.bits_of_float (-0.0)))
  in
  check_graph (pgf_ok (Pgf.print g));
  check_graph (graphml_ok (Graphml.to_string g))

let test_xml_hostile_strings () =
  let props =
    [
      ("s", V.String "a<b & \"c\" 'd' > e");
      ("id", V.Id "x&y<z");
      ("multi", V.String "line one\nline two");
    ]
  in
  let g, _ = G.add_node G.empty ~label:"T" ~props () in
  check_bool "pgf" true (G.equal g (pgf_ok (Pgf.print g)));
  check_bool "graphml" true (G.equal g (graphml_ok (Graphml.to_string g)))

(* one name at three kinds: the GraphML key degrades to pg.kind="mixed",
   every value is rendered in PGF literal syntax, and the graph still
   round-trips *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_mixed_kind_round_trip () =
  let g, a = G.add_node G.empty ~label:"A" ~props:[ ("p", V.Int 1) ] () in
  let g, b = G.add_node g ~label:"A" ~props:[ ("p", V.String "s") ] () in
  let g, _ = G.add_node g ~label:"A" ~props:[ ("p", V.List [ V.Id "i" ]) ] () in
  let g, _ = G.add_edge g ~label:"r" ~props:[ ("p", V.Enum "RED") ] a b in
  check_bool "mixed kind declared" true
    (contains ~sub:"pg.kind=\"mixed\"" (Graphml.to_string g));
  check_bool "round-trip" true (G.equal g (graphml_ok (Graphml.to_string g)))

let suite =
  [
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "empty property maps" `Quick test_empty_property_maps;
    Alcotest.test_case "nan, -0.0 and infinities" `Quick test_nonfinite_floats;
    Alcotest.test_case "XML-hostile strings" `Quick test_xml_hostile_strings;
    Alcotest.test_case "mixed-kind GraphML round-trip" `Quick test_mixed_kind_round_trip;
    QCheck_alcotest.to_alcotest prop_pgf_round_trip;
    QCheck_alcotest.to_alcotest prop_graphml_round_trip;
    QCheck_alcotest.to_alcotest prop_value_round_trip;
  ]
