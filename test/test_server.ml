(* The validation daemon (lib/server): wire protocol goldens, byte
   parity of served envelopes with `gpgs validate --format json`
   (including a qcheck sweep over generated workloads and engines), the
   content-addressed LRU cache, and fault injection against a live
   server — garbage frames, oversized frames, mid-request disconnects,
   crash-injected jobs, overload shedding, and storm-then-drain. *)

module GP = Graphql_pg
module Json = GP.Json
module Cache = Pg_server.Cache
module Protocol = Pg_server.Protocol
module Service = Pg_server.Service
module Server = Pg_server.Server

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let test_dir = Filename.dirname Sys.executable_name
let in_repo rel = Filename.concat test_dir rel

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let movies_sdl = in_repo "../examples/movies.graphql"
let movies_pgs = in_repo "../examples/movies.pgs"
let movies_pgf = in_repo "../examples/movies.pgf"

(* Same CLI runner as test_diag.ml: capture stdout and the exit code. *)
let run_cli args =
  let out = Filename.temp_file "gpgs_served" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>/dev/null"
      (Filename.quote (in_repo "../bin/gpgs.exe"))
      args (Filename.quote out)
  in
  let code =
    match Sys.command cmd with
    | c when c land 0xff = 0 -> c lsr 8
    | c -> c
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

(* ---- request building / response decoding ---- *)

let validate_req ?schema_lang ?engine ?mode ?domains ?shards ?snapshot ?lenient ?deadline_ms
    ?max_violations ~schema ~graph () =
  let fields =
    List.filter_map
      (fun x -> x)
      [
        Some ("op", Json.String "validate");
        Some ("schema", Json.String schema);
        Option.map (fun l -> ("schema_lang", Json.String l)) schema_lang;
        Some ("graph", Json.String graph);
        Option.map (fun e -> ("engine", Json.String e)) engine;
        Option.map (fun m -> ("mode", Json.String m)) mode;
        Option.map (fun d -> ("domains", Json.Int d)) domains;
        Option.map (fun s -> ("shards", Json.Int s)) shards;
        Option.map (fun b -> ("snapshot", Json.Bool b)) snapshot;
        Option.map (fun b -> ("lenient", Json.Bool b)) lenient;
        Option.map (fun d -> ("deadline_ms", Json.Float d)) deadline_ms;
        Option.map (fun m -> ("max_violations", Json.Int m)) max_violations;
      ]
  in
  Json.to_string (Json.Assoc fields)

let decode line =
  match Json.of_string line with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response is not JSON (%s): %s" msg line

let exit_of j = match Json.member "exit" j with Json.Int c -> c | _ -> -1

let codes_of j =
  match Json.member "diagnostics" j with
  | Json.List ds ->
    List.map (fun d -> match Json.member "code" d with Json.String c -> c | _ -> "?") ds
  | _ -> []

let has_code code j = List.mem code (codes_of j)

(* A served response (one compact line) must be the CLI's document:
   re-indent it and compare the bytes, and compare the embedded exit
   code against the process exit code. *)
let check_parity ~what served (cli_code, cli_out) =
  let j = decode served in
  check_string (what ^ ": envelope bytes") cli_out (Json.to_string ~indent:true j ^ "\n");
  check_int (what ^ ": exit code") cli_code (exit_of j)

(* ---- protocol ---- *)

let test_protocol_parse_ok () =
  (match Protocol.parse {|{"op":"ping"}|} with
  | Ok Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping did not parse");
  (match Protocol.parse {|{"op":"stats"}|} with
  | Ok Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats did not parse");
  match
    Protocol.parse
      {|{"op":"validate","schema":"s","graph":"g","engine":"sharded","mode":"weak","domains":2,"shards":8,"snapshot":true,"lenient":true,"deadline_ms":250,"max_violations":10,"future_field":[1]}|}
  with
  | Ok (Protocol.Validate r) ->
    check_bool "engine" true (r.Protocol.engine = GP.Validate.Sharded);
    check_bool "mode" true (r.Protocol.mode = GP.Validate.Weak);
    check_bool "domains" true (r.Protocol.domains = Some 2);
    check_bool "shards" true (r.Protocol.shards = Some 8);
    check_bool "snapshot" true r.Protocol.snapshot;
    check_bool "lenient" true r.Protocol.lenient;
    check_bool "deadline" true (r.Protocol.deadline_ms = Some 250.);
    check_bool "max_violations" true (r.Protocol.max_violations = Some 10)
  | _ -> Alcotest.fail "validate did not parse"

let test_protocol_schema_lang () =
  (match Protocol.parse {|{"op":"validate","schema":"s.pgs","graph":"g","schema_lang":"pgschema"}|} with
  | Ok (Protocol.Validate r) ->
    check_bool "pgschema" true (r.Protocol.schema_lang = Some GP.Frontend.Pgschema)
  | _ -> Alcotest.fail "schema_lang pgschema did not parse");
  (match Protocol.parse {|{"op":"validate","schema":"s","graph":"g","schema_lang":"sdl"}|} with
  | Ok (Protocol.Validate r) ->
    check_bool "sdl" true (r.Protocol.schema_lang = Some GP.Frontend.Sdl)
  | _ -> Alcotest.fail "schema_lang sdl did not parse");
  (match Protocol.parse {|{"op":"validate","schema":"s","graph":"g"}|} with
  | Ok (Protocol.Validate r) ->
    check_bool "absent means inferred" true (r.Protocol.schema_lang = None)
  | _ -> Alcotest.fail "minimal validate did not parse");
  match Protocol.parse {|{"op":"validate","schema":"s","graph":"g","schema_lang":"cypher"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown schema_lang accepted"

let test_protocol_defaults () =
  match Protocol.parse {|{"op":"validate","schema":"s","graph":"g"}|} with
  | Ok (Protocol.Validate r) ->
    check_bool "engine default" true (r.Protocol.engine = GP.Validate.Indexed);
    check_bool "mode default" true (r.Protocol.mode = GP.Validate.Strong);
    check_bool "no budget" true (r.Protocol.deadline_ms = None && r.Protocol.max_violations = None);
    check_bool "not snapshot" true (not r.Protocol.snapshot)
  | _ -> Alcotest.fail "minimal validate did not parse"

let test_protocol_rejects () =
  let bad line =
    match Protocol.parse line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted: %s" line
  in
  bad "not json";
  bad {|[1,2]|};
  bad {|{"no_op":1}|};
  bad {|{"op":"frobnicate"}|};
  bad {|{"op":"validate"}|};
  bad {|{"op":"validate","schema":"s"}|};
  bad {|{"op":"validate","schema":"s","graph":"g","engine":"warp"}|};
  bad {|{"op":"validate","schema":"s","graph":"g","mode":"loose"}|};
  bad {|{"op":"validate","schema":"s","graph":"g","domains":"four"}|};
  bad {|{"op":"validate","schema":1,"graph":"g"}|}

(* ---- the LRU cache (satellite: hit/miss, eviction order,
   content-hash invalidation) ---- *)

let temp_with content =
  let path = Filename.temp_file "gpgs_cache" ".txt" in
  write_file path content;
  path

let test_cache_hit_miss () =
  let c = Cache.create ~capacity:4 in
  let a = temp_with "alpha" in
  let load ~content = String.uppercase_ascii (Lazy.force content) in
  let v1 = Result.get_ok (Cache.find c ~key:"a" ~path:a ~load) in
  check_string "loaded" "ALPHA" v1.Cache.value;
  let v2 = Result.get_ok (Cache.find c ~key:"a" ~path:a ~load) in
  check_string "cached" "ALPHA" v2.Cache.value;
  let s = Cache.stats c in
  check_int "hits" 1 s.Cache.hits;
  check_int "misses" 1 s.Cache.misses;
  check_int "size" 1 s.Cache.size;
  check_int "no invalidations" 0 s.Cache.invalidations;
  Sys.remove a

let test_cache_invalidation () =
  let c = Cache.create ~capacity:4 in
  let a = temp_with "one" in
  let load ~content = Lazy.force content in
  let v1 = Result.get_ok (Cache.find c ~key:"a" ~path:a ~load) in
  check_string "first content" "one" v1.Cache.value;
  write_file a "two";
  let v2 = Result.get_ok (Cache.find c ~key:"a" ~path:a ~load) in
  check_string "rebuilt on content change" "two" v2.Cache.value;
  check_bool "digest changed" true (not (String.equal v1.Cache.digest v2.Cache.digest));
  let s = Cache.stats c in
  check_int "invalidations" 1 s.Cache.invalidations;
  check_int "misses (initial + rebuild)" 2 s.Cache.misses;
  check_int "hits" 0 s.Cache.hits;
  check_int "size" 1 s.Cache.size;
  Sys.remove a

let test_cache_eviction_order () =
  let c = Cache.create ~capacity:2 in
  let load ~content = Lazy.force content in
  let a = temp_with "A" and b = temp_with "B" and d = temp_with "D" in
  ignore (Cache.find c ~key:"a" ~path:a ~load);
  ignore (Cache.find c ~key:"b" ~path:b ~load);
  (* touch a so b becomes the least recently used *)
  ignore (Cache.find c ~key:"a" ~path:a ~load);
  ignore (Cache.find c ~key:"d" ~path:d ~load);
  let s = Cache.stats c in
  check_int "one eviction" 1 s.Cache.evictions;
  check_int "size at capacity" 2 s.Cache.size;
  (* a must still be resident (hit), b must be gone (miss) *)
  let before = (Cache.stats c).Cache.hits in
  ignore (Cache.find c ~key:"a" ~path:a ~load);
  check_int "a survived (LRU was b)" (before + 1) (Cache.stats c).Cache.hits;
  let misses = (Cache.stats c).Cache.misses in
  ignore (Cache.find c ~key:"b" ~path:b ~load);
  check_int "b was evicted" (misses + 1) (Cache.stats c).Cache.misses;
  List.iter Sys.remove [ a; b; d ]

let test_cache_unreadable () =
  let c = Cache.create ~capacity:2 in
  let load ~content = Lazy.force content in
  (match Cache.find c ~key:"x" ~path:"/nonexistent/gpgs/file" ~load with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unreadable path produced a value");
  check_int "nothing cached" 0 (Cache.stats c).Cache.size

let test_cache_uid_generations () =
  let c = Cache.create ~capacity:4 in
  let load ~content = Lazy.force content in
  let a = temp_with "one" in
  let v1 = Result.get_ok (Cache.find c ~key:"a" ~path:a ~load) in
  let v2 = Result.get_ok (Cache.find c ~key:"a" ~path:a ~load) in
  check_int "a hit is the same build (uid stable)" v1.Cache.uid v2.Cache.uid;
  write_file a "two";
  let v3 = Result.get_ok (Cache.find c ~key:"a" ~path:a ~load) in
  check_bool "a rebuild is a new value (uid moves)" true (v3.Cache.uid <> v1.Cache.uid);
  (* identical bytes under another key: same digest, never the same uid
     — that distinction is what snapshot keying relies on *)
  let b = temp_with "two" in
  let v4 = Result.get_ok (Cache.find c ~key:"b" ~path:b ~load) in
  check_string "identical bytes share a digest" v3.Cache.digest v4.Cache.digest;
  check_bool "but never a uid" true (v4.Cache.uid <> v3.Cache.uid);
  List.iter Sys.remove [ a; b ]

let test_cache_single_flight () =
  (* Concurrent lookups of one key must run [load] once: the builder
     holds the per-key latch, the rest park on it and take the built
     entry (as a digest-confirmed hit). *)
  let c = Cache.create ~capacity:4 in
  let a = temp_with "payload" in
  let loads = Atomic.make 0 in
  let load ~content =
    Atomic.incr loads;
    Unix.sleepf 0.05;
    Lazy.force content
  in
  let ds =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Cache.find c ~key:"a" ~path:a ~load))
  in
  List.iter
    (fun d ->
      match Domain.join d with
      | Ok e -> check_string "value" "payload" e.Cache.value
      | Error msg -> Alcotest.fail msg)
    ds;
  check_int "load ran once" 1 (Atomic.get loads);
  check_int "one miss" 1 (Cache.stats c).Cache.misses;
  Sys.remove a

(* ---- service-level byte parity with the CLI ---- *)

let service ?(config = Service.default_config) () = Service.create ~config ()

let test_served_validate_golden () =
  (* the served movies validation must match the pinned CLI golden *)
  let svc = service () in
  let served = Service.handle svc (validate_req ~schema:movies_sdl ~graph:movies_pgf ()) in
  let j = decode served in
  check_string "golden envelope"
    (read_file (in_repo "golden/validate_movies.json"))
    (Json.to_string ~indent:true j ^ "\n");
  check_int "exit" 1 (exit_of j)

let quote = Filename.quote

let cli_validate_args ?(engine = "indexed") ?(mode = "strong") ?extra ~schema ~graph () =
  Printf.sprintf "validate %s %s --engine %s --mode %s%s --format json" (quote schema)
    (quote graph) engine mode
    (match extra with Some e -> " " ^ e | None -> "")

let test_served_parity_engines () =
  let svc = service () in
  List.iter
    (fun engine ->
      let served =
        Service.handle svc (validate_req ~engine ~schema:movies_sdl ~graph:movies_pgf ())
      in
      check_parity ~what:("engine " ^ engine) served
        (run_cli (cli_validate_args ~engine ~schema:movies_sdl ~graph:movies_pgf ())))
    [ "naive"; "linear"; "indexed"; "parallel"; "sharded" ]

let test_served_parity_budgeted () =
  (* an active budget changes the scan counters; the served request must
     still match the CLI run with the same flags *)
  let svc = service () in
  let served =
    Service.handle svc
      (validate_req ~max_violations:1 ~schema:movies_sdl ~graph:movies_pgf ())
  in
  check_parity ~what:"budgeted" served
    (run_cli
       (cli_validate_args ~extra:"--max-violations 1" ~schema:movies_sdl ~graph:movies_pgf ()));
  let served0 =
    Service.handle svc (validate_req ~deadline_ms:0. ~schema:movies_sdl ~graph:movies_pgf ())
  in
  check_parity ~what:"deadline 0" served0
    (run_cli (cli_validate_args ~extra:"--deadline-ms 0" ~schema:movies_sdl ~graph:movies_pgf ()));
  (* the request asked for the deadline itself: no SRV003 *)
  check_bool "no SRV003 for client budgets" false (has_code "SRV003" (decode served0))

let test_served_parity_errors () =
  let svc = service () in
  (* usage error: bad domain count, CLI001 with the CLI's message *)
  let served =
    Service.handle svc (validate_req ~domains:0 ~schema:movies_sdl ~graph:movies_pgf ())
  in
  let j = decode served in
  check_int "usage exit" 2 (exit_of j);
  check_bool "CLI001" true (has_code "CLI001" j);
  (* broken schema: same envelope as the CLI *)
  let broken = in_repo "../examples/broken.graphql" in
  let served = Service.handle svc (validate_req ~schema:broken ~graph:movies_pgf ()) in
  check_parity ~what:"broken schema" served
    (run_cli
       (Printf.sprintf "validate %s %s --format json" (quote broken) (quote movies_pgf)));
  (* unreadable graph file: IO001, input-error class *)
  let served = Service.handle svc (validate_req ~schema:movies_sdl ~graph:"/nonexistent.pgf" ()) in
  let j = decode served in
  check_int "missing graph exit" 2 (exit_of j);
  check_bool "IO001" true (has_code "IO001" j);
  (* unreadable schema file: IO001 without a CLI equivalent (cmdliner
     rejects the path before the subcommand runs) *)
  let served = Service.handle svc (validate_req ~schema:"/nonexistent.graphql" ~graph:movies_pgf ()) in
  check_int "missing schema exit" 2 (exit_of (decode served))

let test_served_parity_generated =
  QCheck.Test.make ~name:"served validate is byte-identical to the CLI" ~count:8
    QCheck.(
      triple (int_range 1 25) (int_range 0 1000)
        (oneofl [ "indexed"; "linear"; "parallel"; "naive" ]))
    (fun (persons, seed, engine) ->
      let svc = service () in
      let sch_path = Filename.temp_file "gpgs_social" ".graphql" in
      let pgf_path = Filename.temp_file "gpgs_social" ".pgf" in
      write_file sch_path GP.Social.schema_text;
      let g = GP.Social.generate ~seed ~persons () in
      (* corrupt half the runs so parity also covers findings *)
      let g =
        if seed mod 2 = 0 then
          GP.Social.corrupt_uniformly ~seed ~rate:0.2 (GP.Social.schema ()) g
        else g
      in
      write_file pgf_path (GP.Pgf.print g);
      let served = Service.handle svc (validate_req ~engine ~schema:sch_path ~graph:pgf_path ()) in
      let cli = run_cli (cli_validate_args ~engine ~schema:sch_path ~graph:pgf_path ()) in
      check_parity ~what:(Printf.sprintf "persons=%d seed=%d %s" persons seed engine) served cli;
      Sys.remove sch_path;
      Sys.remove pgf_path;
      true)

let test_served_snapshot_parity () =
  let svc = service () in
  let snap_path = Filename.temp_file "gpgs_snap" ".pgsnap" in
  let g = match GP.Pgf.load movies_pgf with Ok g -> g | Error _ -> Alcotest.fail "movies.pgf" in
  let st = GP.Symtab.create () in
  ignore (GP.Snapshot_io.write st (GP.Snapshot.build st g) snap_path);
  List.iter
    (fun engine ->
      let served =
        Service.handle svc
          (validate_req ~engine ~snapshot:true ~schema:movies_sdl ~graph:snap_path ())
      in
      check_parity ~what:("snapshot " ^ engine) served
        (run_cli
           (cli_validate_args ~engine ~extra:"--snapshot" ~schema:movies_sdl ~graph:snap_path ())))
    [ "indexed"; "sharded"; "indexed" ];
  (* the sharded engine maps the file per request (it holds an fd), so
     the cache hit comes from the repeated indexed run *)
  check_bool "snapshot cache hits" true ((Service.snapshot_stats svc).Cache.hits >= 1);
  (* naive + snapshot is the CLI's usage error, same code *)
  let served =
    Service.handle svc
      (validate_req ~engine:"naive" ~snapshot:true ~schema:movies_sdl ~graph:snap_path ())
  in
  let j = decode served in
  check_int "naive snapshot exit" 2 (exit_of j);
  check_bool "CLI001" true (has_code "CLI001" j);
  Sys.remove snap_path

let test_snapshot_cache_keyed_by_plan_instance () =
  (* The lenient and strict plans for one schema, and successive
     recompiles after an eviction, share a schema content digest while
     holding different symtabs.  Loading a snapshot interns graph-only
     labels (here :Alien) into the symtab of the exact plan instance
     that loads it, so a snapshot cache keyed by digest served the
     cached snapshot to the *other* plan instances, whose symtabs never
     interned those ids — violation rendering then crashed the request
     (SRV005) or printed wrong names.  The cache key is the plan
     entry's uid now; every plan generation must get a snapshot loaded
     through its own symtab. *)
  let config = { Service.default_config with Service.plan_capacity = 1 } in
  let svc = service ~config () in
  let sdl =
    temp_with "type Person @key(fields: [\"name\"]) {\n  name: String! @required\n}\n"
  in
  let pgf = temp_with "node n0 :Person {name: \"Ripley\"}\nnode n1 :Alien {name: \"Xeno\"}\n" in
  let snap_path = Filename.temp_file "gpgs_snap_uid" ".pgsnap" in
  let g = match GP.Pgf.load pgf with Ok g -> g | Error _ -> Alcotest.fail "fixture pgf" in
  let st = GP.Symtab.create () in
  ignore (GP.Snapshot_io.write st (GP.Snapshot.build st g) snap_path);
  let req ?lenient () =
    validate_req ~engine:"indexed" ~snapshot:true ?lenient ~schema:sdl ~graph:snap_path ()
  in
  let first = decode (Service.handle svc (req ())) in
  check_bool "first run reports, not crashes" false (has_code "SRV005" first);
  (* same schema bytes, different plan instance: leniency *)
  let lenient = decode (Service.handle svc (req ~lenient:true ())) in
  check_bool "lenient plan does not crash on the cached snapshot" false
    (has_code "SRV005" lenient);
  (* same schema bytes, different plan instance: evict (capacity 1) and
     recompile *)
  let other_sdl =
    temp_with "type Movie @key(fields: [\"title\"]) {\n  title: String! @required\n}\n"
  in
  ignore (Service.handle svc (validate_req ~schema:other_sdl ~graph:pgf ()));
  let third = decode (Service.handle svc (req ())) in
  check_bool "recompiled plan does not crash on the cached snapshot" false
    (has_code "SRV005" third);
  check_string "envelope stable across plan generations" (Json.to_string first)
    (Json.to_string third);
  List.iter Sys.remove [ sdl; pgf; snap_path; other_sdl ]

let test_plan_cache_invalidation_end_to_end () =
  let svc = service () in
  let sch_path = Filename.temp_file "gpgs_inval" ".graphql" in
  write_file sch_path (read_file movies_sdl);
  let req = validate_req ~schema:sch_path ~graph:movies_pgf () in
  ignore (Service.handle svc req);
  ignore (Service.handle svc req);
  let s = Service.plan_stats svc in
  check_int "one compile" 1 s.Cache.misses;
  check_int "one cache hit" 1 s.Cache.hits;
  (* touch the schema content: same semantics, different digest *)
  write_file sch_path (read_file movies_sdl ^ "\n# revised\n");
  let served = Service.handle svc req in
  check_int "still validates" 1 (exit_of (decode served));
  let s = Service.plan_stats svc in
  check_int "invalidated" 1 s.Cache.invalidations;
  check_int "recompiled" 2 s.Cache.misses;
  Sys.remove sch_path

(* ---- the PG-Schema frontend through the wire protocol ---- *)

let test_served_pgschema_parity () =
  let svc = service () in
  (* explicit schema_lang and extension inference must serve the same
     envelope the CLI prints, and the same violations as the SDL twin *)
  let explicit =
    Service.handle svc
      (validate_req ~schema_lang:"pgschema" ~schema:movies_pgs ~graph:movies_pgf ())
  in
  check_parity ~what:"pgschema explicit" explicit
    (run_cli
       (Printf.sprintf "validate %s %s --schema-lang pgschema --format json"
          (Filename.quote movies_pgs) (Filename.quote movies_pgf)));
  let inferred = Service.handle svc (validate_req ~schema:movies_pgs ~graph:movies_pgf ()) in
  check_string "inference = explicit" explicit inferred;
  let sdl = Service.handle svc (validate_req ~schema:movies_sdl ~graph:movies_pgf ()) in
  check_bool "same violation codes as the SDL twin" true
    (codes_of (decode sdl) = codes_of (decode explicit));
  (* the two explicit/inferred requests share one plan cache entry *)
  let s = Service.plan_stats svc in
  check_int "one pgschema compile" 2 s.Cache.misses;
  check_int "inferred request hit the cache" 1 s.Cache.hits

let test_stats_frontend_tags () =
  let svc = service () in
  ignore (Service.handle svc (validate_req ~schema:movies_sdl ~graph:movies_pgf ()));
  ignore (Service.handle svc (validate_req ~schema:movies_pgs ~graph:movies_pgf ()));
  let j = decode (Service.handle svc {|{"op":"stats"}|}) in
  let entries =
    match Json.member "summary" j |> Json.member "plan_entries" with
    | Json.List es -> es
    | _ -> Alcotest.fail "stats lacks plan_entries"
  in
  check_int "two resident plans" 2 (List.length entries);
  let frontend_of schema =
    List.find_map
      (fun e ->
        match (Json.member "schema" e, Json.member "frontend" e) with
        | Json.String s, Json.String f when s = schema -> Some f
        | _ -> None)
      entries
  in
  check_bool "sdl entry tagged" true (frontend_of movies_sdl = Some "sdl");
  check_bool "pgschema entry tagged" true (frontend_of movies_pgs = Some "pgschema");
  List.iter
    (fun e ->
      match Json.member "lenient" e with
      | Json.Bool false -> ()
      | _ -> Alcotest.fail "strict entries must carry lenient=false")
    entries

let test_server_default_deadline_srv003 () =
  let config = { Service.default_config with Service.default_deadline_ms = Some 0. } in
  let svc = service ~config () in
  (* no budget in the request: the server's default applies and, having
     cut the run short, is reported as SRV003 *)
  let j = decode (Service.handle svc (validate_req ~schema:movies_sdl ~graph:movies_pgf ())) in
  check_bool "VAL001 (incomplete)" true (has_code "VAL001" j);
  check_bool "SRV003 (server deadline)" true (has_code "SRV003" j);
  check_int "budget exit" 3 (exit_of j);
  (* a request carrying its own deadline never gets SRV003 *)
  let j =
    decode
      (Service.handle svc (validate_req ~deadline_ms:0. ~schema:movies_sdl ~graph:movies_pgf ()))
  in
  check_bool "VAL001" true (has_code "VAL001" j);
  check_bool "no SRV003" false (has_code "SRV003" j)

let test_debug_ops_gate () =
  let svc = service () in
  let j = decode (Service.handle svc {|{"op":"boom"}|}) in
  check_bool "boom disabled -> SRV001" true (has_code "SRV001" j);
  let config = { Service.default_config with Service.debug_ops = true } in
  let svc = service ~config () in
  let j = decode (Service.handle svc {|{"op":"boom"}|}) in
  check_bool "boom -> SRV005" true (has_code "SRV005" j);
  check_int "crash exit" 3 (exit_of j)

let test_malformed_is_srv001 () =
  let svc = service () in
  let j = decode (Service.handle svc "not json at all") in
  check_bool "SRV001" true (has_code "SRV001" j);
  check_int "input exit" 2 (exit_of j)

(* ---- live server: sockets, faults, drain ---- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_raw fd s =
  let b = Bytes.of_string s in
  let rec go pos = if pos < Bytes.length b then go (pos + Unix.write fd b pos (Bytes.length b - pos)) in
  go 0

let send_line fd s = send_raw fd (s ^ "\n")

(* Read one response line; "" means the server closed the connection. *)
let recv_line fd =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
      if Bytes.get one 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get one 0);
        go ()
      end
  in
  go ()

let roundtrip fd line =
  send_line fd line;
  recv_line fd

let with_server ?(workers = 2) ?(max_pending = 16) ?(max_request_bytes = 1 lsl 20)
    ?(svc_config = Service.default_config) f =
  let path = Filename.temp_file "gpgs_srv" ".sock" in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let svc = Service.create ~config:svc_config () in
  let config =
    {
      (Server.default_config (Server.Unix_socket path)) with
      Server.workers;
      max_pending;
      max_request_bytes;
      read_timeout_ms = 10_000.;
      drain_grace_ms = 3_000.;
    }
  in
  let daemon =
    Domain.spawn (fun () ->
      Server.run ~stop ~on_ready:(fun _ -> Atomic.set ready true) config svc)
  in
  let rec await n =
    if Atomic.get ready then ()
    else if n = 0 then Alcotest.fail "server never became ready"
    else begin
      Unix.sleepf 0.01;
      await (n - 1)
    end
  in
  await 1000;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join daemon;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path svc)

let test_live_roundtrip () =
  with_server (fun path _svc ->
    let fd = connect path in
    let ping = decode (roundtrip fd {|{"op":"ping"}|}) in
    check_int "ping exit" 0 (exit_of ping);
    let served = roundtrip fd (validate_req ~schema:movies_sdl ~graph:movies_pgf ()) in
    check_string "served over the wire = golden"
      (read_file (in_repo "golden/validate_movies.json"))
      (Json.to_string ~indent:true (decode served) ^ "\n");
    (* several requests on one connection *)
    check_int "second ping" 0 (exit_of (decode (roundtrip fd {|{"op":"ping"}|})));
    Unix.close fd)

let test_live_garbage_frame_keeps_connection () =
  with_server (fun path _svc ->
    let fd = connect path in
    let j = decode (roundtrip fd "{{{ definitely not json") in
    check_bool "SRV001" true (has_code "SRV001" j);
    (* the connection survives a malformed frame: newline framing
       resynchronizes on the next line *)
    check_int "still serving" 0 (exit_of (decode (roundtrip fd {|{"op":"ping"}|})));
    Unix.close fd)

let test_live_oversized_frame_closes () =
  with_server ~max_request_bytes:128 (fun path _svc ->
    let fd = connect path in
    (* the server may report and close before the whole flood is
       written; the tail of the send then fails with EPIPE, which is
       exactly the behaviour under test *)
    (try
       send_raw fd (String.make 4096 'x');
       send_raw fd "\n"
     with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
    let j = decode (recv_line fd) in
    check_bool "SRV002" true (has_code "SRV002" j);
    check_int "input exit" 2 (exit_of j);
    (* past the report the server closes: EOF *)
    check_string "closed after oversized" "" (recv_line fd);
    Unix.close fd;
    (* and the server is still alive for new clients *)
    let fd = connect path in
    check_int "fresh connection works" 0 (exit_of (decode (roundtrip fd {|{"op":"ping"}|})));
    Unix.close fd)

let test_live_mid_request_disconnect () =
  with_server (fun path _svc ->
    (* a client that dies mid-frame must not hurt the server *)
    let fd = connect path in
    send_raw fd {|{"op":"vali|};
    Unix.close fd;
    Unix.sleepf 0.05;
    let fd = connect path in
    check_int "server survived" 0 (exit_of (decode (roundtrip fd {|{"op":"ping"}|})));
    Unix.close fd)

let test_live_crash_injected_job () =
  let svc_config = { Service.default_config with Service.debug_ops = true } in
  with_server ~svc_config (fun path _svc ->
    let fd = connect path in
    let j = decode (roundtrip fd {|{"op":"boom"}|}) in
    check_bool "SRV005" true (has_code "SRV005" j);
    check_int "crash exit" 3 (exit_of j);
    (* the worker survived its crashed job *)
    check_int "same connection serves on" 0 (exit_of (decode (roundtrip fd {|{"op":"ping"}|})));
    Unix.close fd)

let test_live_shedding () =
  let svc_config = { Service.default_config with Service.debug_ops = true } in
  with_server ~workers:1 ~max_pending:1 ~svc_config (fun path _svc ->
    (* occupy the only worker... *)
    let busy = connect path in
    send_line busy {|{"op":"sleep","seconds":1.2}|};
    Unix.sleepf 0.3;
    (* ...fill the pending queue... *)
    let queued = connect path in
    Unix.sleepf 0.1;
    (* ...and the next connection must be shed with SRV004 *)
    let extra = connect path in
    let j = decode (recv_line extra) in
    check_bool "SRV004" true (has_code "SRV004" j);
    check_int "overload exit" 3 (exit_of j);
    check_string "shed connection closed" "" (recv_line extra);
    Unix.close extra;
    (* the busy request still completes *)
    check_int "sleep completed" 0 (exit_of (decode (recv_line busy)));
    (* a worker owns a connection to EOF, so the queued one is picked up
       once the busy connection closes *)
    Unix.close busy;
    check_int "queued served" 0 (exit_of (decode (roundtrip queued {|{"op":"ping"}|})));
    Unix.close queued)

let test_live_storm_then_drain () =
  let requests_per_client = 10 and clients = 6 in
  let path_ref = ref "" in
  with_server ~workers:3 ~max_pending:64 (fun path _svc ->
    path_ref := path;
    let storm () =
      let fd = connect path in
      let ok = ref 0 in
      for _ = 1 to requests_per_client do
        let j = decode (roundtrip fd (validate_req ~schema:movies_sdl ~graph:movies_pgf ())) in
        if exit_of j = 1 && has_code "WS1" j then incr ok
      done;
      Unix.close fd;
      !ok
    in
    let domains = List.init clients (fun _ -> Domain.spawn storm) in
    let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
    check_int "every stormed request got the right envelope"
      (clients * requests_per_client) total);
  (* with_server has set stop and joined: the drain is complete and the
     socket must be gone *)
  check_bool "socket unlinked after drain" false (Sys.file_exists !path_ref);
  match connect !path_ref with
  | fd ->
    Unix.close fd;
    Alcotest.fail "server still accepting after drain"
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) -> ()

let suite =
  [
    Alcotest.test_case "protocol: requests parse" `Quick test_protocol_parse_ok;
    Alcotest.test_case "protocol: defaults match the CLI" `Quick test_protocol_defaults;
    Alcotest.test_case "protocol: malformed requests rejected" `Quick test_protocol_rejects;
    Alcotest.test_case "protocol: schema_lang field" `Quick test_protocol_schema_lang;
    Alcotest.test_case "cache: hit and miss counters" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache: content-hash invalidation" `Quick test_cache_invalidation;
    Alcotest.test_case "cache: LRU eviction order" `Quick test_cache_eviction_order;
    Alcotest.test_case "cache: unreadable file caches nothing" `Quick test_cache_unreadable;
    Alcotest.test_case "cache: uid moves with every rebuild" `Quick test_cache_uid_generations;
    Alcotest.test_case "cache: concurrent lookups build once" `Quick test_cache_single_flight;
    Alcotest.test_case "served validate matches the pinned golden" `Quick
      test_served_validate_golden;
    Alcotest.test_case "served = CLI bytes for every engine" `Quick test_served_parity_engines;
    Alcotest.test_case "served = CLI bytes under budgets" `Quick test_served_parity_budgeted;
    Alcotest.test_case "served = CLI bytes on errors" `Quick test_served_parity_errors;
    QCheck_alcotest.to_alcotest test_served_parity_generated;
    Alcotest.test_case "served = CLI bytes on snapshots" `Quick test_served_snapshot_parity;
    Alcotest.test_case "snapshot cache is per plan instance" `Quick
      test_snapshot_cache_keyed_by_plan_instance;
    Alcotest.test_case "plan cache invalidates on schema edit" `Quick
      test_plan_cache_invalidation_end_to_end;
    Alcotest.test_case "served = CLI bytes for the pgschema frontend" `Quick
      test_served_pgschema_parity;
    Alcotest.test_case "stats tags resident plans with their frontend" `Quick
      test_stats_frontend_tags;
    Alcotest.test_case "server default deadline reports SRV003" `Quick
      test_server_default_deadline_srv003;
    Alcotest.test_case "debug ops are gated" `Quick test_debug_ops_gate;
    Alcotest.test_case "malformed request is SRV001" `Quick test_malformed_is_srv001;
    Alcotest.test_case "live: roundtrip over a unix socket" `Quick test_live_roundtrip;
    Alcotest.test_case "live: garbage frame keeps the connection" `Quick
      test_live_garbage_frame_keeps_connection;
    Alcotest.test_case "live: oversized frame reports and closes" `Quick
      test_live_oversized_frame_closes;
    Alcotest.test_case "live: mid-request disconnect" `Quick test_live_mid_request_disconnect;
    Alcotest.test_case "live: crash-injected job is confined" `Quick test_live_crash_injected_job;
    Alcotest.test_case "live: overload sheds with SRV004" `Quick test_live_shedding;
    Alcotest.test_case "live: storm then graceful drain" `Quick test_live_storm_then_drain;
  ]
