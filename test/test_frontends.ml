(* Fault injection on the serialized formats: truncations and byte flips
   of well-formed SDL / PGF / GraphML texts must never make a front end
   raise or loop — every outcome is [Ok] or a positioned [Error].

   This complements test_fuzz.ml (uniformly random input): corrupted
   well-formed documents reach much deeper parser states than random
   bytes do. *)

module Corruption = Graphql_pg.Corruption
module Schema_gen = Graphql_pg.Schema_gen
module Pgf = Graphql_pg.Pgf
module Graphml = Graphql_pg.Graphml

let seeded_rng seed = Random.State.make [| seed; 0xFA017 |]

(* a pool of well-formed base texts to corrupt *)
let sdl_text seed =
  Graphql_pg.To_sdl.to_string (Schema_gen.random_schema (seeded_rng seed))

let graph seed =
  Graphql_pg.Social.generate ~seed ~persons:(3 + (seed mod 5)) ()

let pgf_text seed = Pgf.print (graph seed)
let graphml_text seed = Graphml.to_string (graph seed)

let total name base parse =
  QCheck2.Test.make ~name ~count:300
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (base_seed, fault_seed) ->
      let rng = seeded_rng fault_seed in
      let corrupted = Corruption.corrupt_text rng (base base_seed) in
      match parse corrupted with _ -> true)

let suite =
  [
    QCheck_alcotest.to_alcotest
      (total "SDL parser survives corrupted schemas" sdl_text Graphql_pg.Sdl.Parser.parse);
    QCheck_alcotest.to_alcotest
      (total "SDL recovery survives corrupted schemas" sdl_text
         Graphql_pg.Sdl.Parser.parse_with_recovery);
    QCheck_alcotest.to_alcotest
      (total "schema builder survives corrupted schemas" sdl_text Graphql_pg.Of_ast.parse);
    QCheck_alcotest.to_alcotest
      (total "PGF parser survives corrupted graphs" pgf_text Pgf.parse);
    QCheck_alcotest.to_alcotest
      (total "GraphML parser survives corrupted graphs" graphml_text Graphml.parse);
  ]
