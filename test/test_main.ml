(* Test runner: every module contributes a named alcotest suite. *)

let () =
  Alcotest.run "graphql_pg"
    [
      ("value", Test_value.suite);
      ("property_graph", Test_property_graph.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("printer", Test_printer.suite);
      ("lint", Test_lint.suite);
      ("pgf", Test_pgf.suite);
      ("wrapped", Test_wrapped.suite);
      ("schema", Test_schema.suite);
      ("subtype", Test_subtype.suite);
      ("values_w", Test_values_w.suite);
      ("consistency", Test_consistency.suite);
      ("of_ast", Test_of_ast.suite);
      ("validation", Test_validation.suite);
      ("engines", Test_engines.suite);
      ("cnf_dpll", Test_cnf_dpll.suite);
      ("alcqi_tableau", Test_alcqi_tableau.suite);
      ("tableau_diff", Test_tableau_diff.suite);
      ("satisfiability", Test_satisfiability.suite);
      ("paper_examples", Test_paper_examples.suite);
      ("angles", Test_angles.suite);
      ("api_extension", Test_api_extension.suite);
      ("gen", Test_gen.suite);
      ("json", Test_json.suite);
      ("query", Test_query.suite);
      ("query_prop", Test_query_prop.suite);
      ("incremental", Test_incremental.suite);
      ("schema_diff", Test_schema_diff.suite);
      ("schema_doc", Test_schema_doc.suite);
      ("cli_formats", Test_cli_formats.suite);
      ("diag", Test_diag.suite);
      ("roundtrip", Test_roundtrip.suite);
      ("fuzz", Test_fuzz.suite);
      ("repair", Test_repair.suite);
      ("mutation", Test_mutation.suite);
      ("neo4j", Test_neo4j.suite);
      ("introspection", Test_introspection.suite);
      ("governor", Test_governor.suite);
      ("recovery", Test_recovery.suite);
      ("frontends", Test_frontends.suite);
      ("pgschema", Test_pgschema.suite);
      ("stream", Test_stream.suite);
      ("snapshot_io", Test_snapshot_io.suite);
      ("sharded", Test_sharded.suite);
      ("server", Test_server.suite);
      ("fault", Test_fault.suite);
    ]
