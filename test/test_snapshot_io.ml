(* Persisted binary snapshots: round-trip fidelity and corruption safety.

   - qcheck: build -> write -> mmap-reopen must produce byte-identical
     normalized validation reports across all five engines (Naive and
     Incremental on the source graph as oracles, the compiled engines on
     both the in-memory snapshot path and the reopened file).
   - Reopening into a *different* plan's symbol table (the symbol remap
     path) must not change the report either.
   - Corrupted files — truncation, bad magic, random byte damage,
     checksum flips, hostile headers resealed with a valid checksum —
     must come back as IO004/IO005 errors, never exceptions.            *)

module G = Graphql_pg.Property_graph
module Val = Graphql_pg.Validate
module Vi = Graphql_pg.Violation
module Snapshot = Graphql_pg.Snapshot
module Sio = Graphql_pg.Snapshot_io
module Symtab = Graphql_pg.Symtab
module Plan = Graphql_pg.Plan
module Schema_gen = Graphql_pg.Schema_gen
module Instance_gen = Graphql_pg.Instance_gen
module Corruption = Graphql_pg.Corruption

let check_bool = Alcotest.(check bool)

let seeded_rng seed = Random.State.make [| seed; 0x5AFE |]

let decimate rng g =
  let g =
    List.fold_left
      (fun g e -> if Random.State.int rng 8 = 0 then G.remove_edge g e else g)
      g (G.edges g)
  in
  List.fold_left
    (fun g v -> if Random.State.int rng 8 = 0 then G.remove_node g v else g)
    g (G.nodes g)

let with_temp_file f =
  let path = Filename.temp_file "gpgs_snap_test" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let write_exn st snap path =
  match Sio.write st snap path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write failed: %a" Sio.pp_error e

let load_exn st path =
  match Sio.load st path with
  | Ok snap -> snap
  | Error e -> Alcotest.failf "load failed: %a" Sio.pp_error e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* The snapshot written from a fresh symtab, reopened into the compiled
   plan's table (exercising the symbol remap), must make every engine
   tell the same story, byte for byte. *)
let reports_identical_through_file sch g =
  with_temp_file (fun path ->
      let st = Symtab.create () in
      write_exn st (Snapshot.build st g) path;
      let plan = Val.compile sch in
      let reopened = load_exn (Plan.symtab plan) path in
      let reference =
        List.map Vi.to_string (Val.check ~engine:Val.Naive sch g).Val.violations
      in
      let incremental =
        List.map Vi.to_string
          (Graphql_pg.Incremental.violations (Graphql_pg.Incremental.create sch g))
      in
      let on_snapshot engine =
        List.map Vi.to_string (Val.check_snapshot ~engine plan reopened).Val.violations
      in
      let on_graph engine =
        List.map Vi.to_string (Val.check ~engine sch g).Val.violations
      in
      List.for_all
        (List.equal String.equal reference)
        [
          incremental;
          on_graph Val.Linear;
          on_snapshot Val.Linear;
          on_snapshot Val.Indexed;
          List.map Vi.to_string
            (Val.check_snapshot ~engine:Val.Parallel ~domains:2 plan reopened).Val.violations;
        ])

let prop_roundtrip_byte_identical =
  QCheck2.Test.make
    ~name:"build -> write -> mmap-reopen: all five engines byte-identical" ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = seeded_rng seed in
      let sch = Schema_gen.random_schema rng in
      let g = decimate rng (Instance_gen.fuzz rng sch ~max_nodes:12) in
      reports_identical_through_file sch g)

let prop_conformant_roundtrip =
  QCheck2.Test.make ~name:"conformant instances stay clean through the file" ~count:40
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = seeded_rng seed in
      let sch = Schema_gen.random_schema rng in
      match Instance_gen.conformant ~seed ~target_nodes:10 sch with
      | None -> true
      | Some g -> reports_identical_through_file sch g)

(* A report with real violations survives the trip (social graph against
   the movies-style foreign schema would need example files; instead
   corrupt a conformant social instance). *)
let test_social_roundtrip () =
  let sch = Graphql_pg.Social.schema () in
  let g = Graphql_pg.Social.generate ~persons:40 () in
  check_bool "clean social graph round-trips" true (reports_identical_through_file sch g);
  let corrupted = Graphql_pg.Social.corrupt_uniformly ~seed:3 ~rate:0.1 sch g in
  check_bool "corrupted social graph round-trips" true
    (reports_identical_through_file sch corrupted)

(* ---- corruption of the file itself ---- *)

let social_snapshot_file k =
  let g = Graphql_pg.Social.generate ~persons:10 () in
  with_temp_file (fun path ->
      let st = Symtab.create () in
      write_exn st (Snapshot.build st g) path;
      k path)

let load_err path =
  match Sio.load (Symtab.create ()) path with
  | Ok _ -> None
  | Error e -> Some e

let test_truncation () =
  social_snapshot_file (fun path ->
      let whole = read_file path in
      let rng = seeded_rng 11 in
      for _ = 1 to 20 do
        write_file path (Corruption.truncate_text rng whole);
        match load_err path with
        | Some e -> check_bool "truncation -> IO004" true (e.Sio.code = "IO004")
        | None -> Alcotest.fail "truncated snapshot loaded"
      done)

let test_bad_magic () =
  social_snapshot_file (fun path ->
      let whole = read_file path in
      write_file path ("XGPSNAPX" ^ String.sub whole 8 (String.length whole - 8));
      match load_err path with
      | Some e -> check_bool "bad magic -> IO004" true (e.Sio.code = "IO004")
      | None -> Alcotest.fail "bad-magic snapshot loaded")

(* Any single damaged byte must be caught: by the checksum (IO005)
   normally, or by a header check (IO004) when the damage hits the
   header fields the loader reads before checksumming. *)
let test_byte_flips () =
  social_snapshot_file (fun path ->
      let whole = read_file path in
      let rng = seeded_rng 13 in
      for _ = 1 to 40 do
        write_file path (Corruption.flip_byte rng whole);
        match load_err path with
        | Some e ->
          check_bool "byte flip -> IO004/IO005" true
            (e.Sio.code = "IO004" || e.Sio.code = "IO005")
        | None -> Alcotest.fail "damaged snapshot loaded"
      done)

let test_checksum_flip () =
  social_snapshot_file (fun path ->
      let whole = read_file path in
      (* flip a bit of the stored checksum itself *)
      let b = Bytes.of_string whole in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x01));
      write_file path (Bytes.to_string b);
      match load_err path with
      | Some e -> check_bool "checksum flip -> IO005" true (e.Sio.code = "IO005")
      | None -> Alcotest.fail "checksum-flipped snapshot loaded")

(* Patch bytes, then reseal with a fresh valid checksum, so the checks
   *behind* the checksum are reached. *)
let patch_and_reseal whole ~pos ~value =
  let b = Bytes.of_string whole in
  Bytes.set_int64_le b pos (Int64.of_int value);
  let body = Bytes.sub_string b 0 (Bytes.length b - 8) in
  Bytes.set_int64_le b (Bytes.length b - 8) (Sio.checksum body);
  Bytes.to_string b

let test_unsupported_version () =
  social_snapshot_file (fun path ->
      let whole = read_file path in
      write_file path (patch_and_reseal whole ~pos:8 ~value:99);
      match load_err path with
      | Some e ->
        check_bool "future version -> IO004" true (e.Sio.code = "IO004");
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check_bool "message names the version" true (contains e.Sio.message "99")
      | None -> Alcotest.fail "future-version snapshot loaded")

let test_hostile_counts () =
  social_snapshot_file (fun path ->
      let whole = read_file path in
      (* node count inflated beyond the stored sections *)
      write_file path (patch_and_reseal whole ~pos:16 ~value:1_000_000);
      (match load_err path with
      | Some e -> check_bool "inflated n -> IO004" true (e.Sio.code = "IO004")
      | None -> Alcotest.fail "inflated-count snapshot loaded");
      (* negative edge count *)
      write_file path (patch_and_reseal whole ~pos:24 ~value:(-3));
      match load_err path with
      | Some e -> check_bool "negative m -> IO004" true (e.Sio.code = "IO004")
      | None -> Alcotest.fail "negative-count snapshot loaded")

let test_hostile_csr () =
  social_snapshot_file (fun path ->
      let whole = read_file path in
      (* find the out_start section (offset table entry 7 of 13, at
         byte 48 + 7*8) and break monotonicity behind a valid checksum *)
      let out_start_off = Int64.to_int (String.get_int64_le whole (48 + (7 * 8))) in
      write_file path (patch_and_reseal whole ~pos:out_start_off ~value:7);
      match load_err path with
      | Some e -> check_bool "broken CSR -> IO004" true (e.Sio.code = "IO004")
      | None -> Alcotest.fail "structurally broken snapshot loaded")

let test_info () =
  let g = Graphql_pg.Social.generate ~persons:10 () in
  with_temp_file (fun path ->
      let st = Symtab.create () in
      write_exn st (Snapshot.build st g) path;
      match Sio.info path with
      | Error e -> Alcotest.failf "info failed: %a" Sio.pp_error e
      | Ok i ->
        Alcotest.(check int) "version" Sio.format_version i.Sio.version;
        Alcotest.(check int) "nodes" (G.node_count g) i.Sio.nodes;
        Alcotest.(check int) "edges" (G.edge_count g) i.Sio.edges;
        Alcotest.(check int) "bytes" (String.length (read_file path)) i.Sio.bytes;
        check_bool "symbols interned" true (i.Sio.symbols = Symtab.size st))

let test_missing_file () =
  match Sio.load (Symtab.create ()) "/nonexistent/gpgs.snap" with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error e -> check_bool "missing file -> IO001" true (e.Sio.code = "IO001")

let test_naive_rejected () =
  let sch = Graphql_pg.Social.schema () in
  let g = Graphql_pg.Social.generate ~persons:5 () in
  with_temp_file (fun path ->
      let st = Symtab.create () in
      write_exn st (Snapshot.build st g) path;
      let plan = Val.compile sch in
      let snap = load_exn (Plan.symtab plan) path in
      check_bool "naive raises Invalid_argument" true
        (match Val.check_snapshot ~engine:Val.Naive plan snap with
        | _ -> false
        | exception Invalid_argument _ -> true))

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip_byte_identical; prop_conformant_roundtrip ]

let suite =
  [
    Alcotest.test_case "social graphs round-trip byte-identically" `Quick
      test_social_roundtrip;
    Alcotest.test_case "truncation is IO004" `Quick test_truncation;
    Alcotest.test_case "bad magic is IO004" `Quick test_bad_magic;
    Alcotest.test_case "random byte damage is IO004/IO005" `Quick test_byte_flips;
    Alcotest.test_case "checksum flip is IO005" `Quick test_checksum_flip;
    Alcotest.test_case "future format version is IO004" `Quick test_unsupported_version;
    Alcotest.test_case "hostile header counts are IO004" `Quick test_hostile_counts;
    Alcotest.test_case "non-monotone CSR offsets are IO004" `Quick test_hostile_csr;
    Alcotest.test_case "info reads the header back" `Quick test_info;
    Alcotest.test_case "missing file is IO001" `Quick test_missing_file;
    Alcotest.test_case "naive engine rejects snapshots" `Quick test_naive_rejected;
  ]
  @ qsuite
