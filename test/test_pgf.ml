(* PGF serialization tests, including a qcheck round-trip. *)

module G = Graphql_pg.Property_graph
module V = Graphql_pg.Value
module Pgf = Graphql_pg.Pgf

let check_bool = Alcotest.(check bool)

let parse_ok src =
  match Pgf.parse src with
  | Ok g -> g
  | Error e -> Alcotest.failf "PGF error: %a" Pgf.pp_error e

let parse_fails src = match Pgf.parse src with Ok _ -> false | Error _ -> true

let test_basic () =
  let g =
    parse_ok
      {|# a comment
node a :User {id: @"u1", login: "alice", nicknames: ["al"], age: 33, score: 1.5, ok: true}
node b :UserSession
edge e a -> b :session
edge b -> a :owner {weight: 0.5, color: RED}
|}
  in
  Alcotest.(check int) "nodes" 2 (G.node_count g);
  Alcotest.(check int) "edges" 2 (G.edge_count g);
  let a = List.hd (G.nodes g) in
  check_bool "id value" true (G.node_prop g a "id" = Some (V.Id "u1"));
  check_bool "string value" true (G.node_prop g a "login" = Some (V.String "alice"));
  check_bool "list value" true (G.node_prop g a "nicknames" = Some (V.List [ V.String "al" ]));
  check_bool "int value" true (G.node_prop g a "age" = Some (V.Int 33));
  check_bool "float value" true (G.node_prop g a "score" = Some (V.Float 1.5));
  check_bool "bool value" true (G.node_prop g a "ok" = Some (V.Bool true));
  let e2 = List.nth (G.edges g) 1 in
  check_bool "enum edge prop" true (G.edge_prop g e2 "color" = Some (V.Enum "RED"))

let test_edge_handle_optional () =
  let g = parse_ok "node a :A\nnode b :B\nedge x a -> b :r\nedge a -> b :r" in
  Alcotest.(check int) "both edges" 2 (G.edge_count g)

let test_errors () =
  check_bool "unknown handle" true (parse_fails "node a :A\nedge a -> zz :r");
  check_bool "duplicate handle" true (parse_fails "node a :A\nnode a :B");
  check_bool "bad keyword" true (parse_fails "vertex a :A");
  check_bool "missing label" true (parse_fails "node a");
  check_bool "trailing junk" true (parse_fails "node a :A junk");
  check_bool "unterminated string" true (parse_fails "node a :A {x: \"oops}");
  check_bool "unterminated props" true (parse_fails "node a :A {x: 1")

let test_escapes () =
  let g = parse_ok {|node a :A {s: "line\nbreak \"quoted\" back\\slash"}|} in
  let a = List.hd (G.nodes g) in
  check_bool "escapes decoded" true
    (G.node_prop g a "s" = Some (V.String "line\nbreak \"quoted\" back\\slash"))

let test_unicode_escapes () =
  let g = parse_ok {|node a :A {s: "\u0041\u00e9\u00FF"}|} in
  let a = List.hd (G.nodes g) in
  check_bool "hex digits decoded" true
    (G.node_prop g a "s" = Some (V.String "A\xe9\xff"));
  (* int_of_string would accept OCaml numeric-literal syntax inside the
     four escape characters; the decoder must not *)
  check_bool "underscore rejected" true (parse_fails {|node a :A {s: "\u1_2f"}|});
  check_bool "sign rejected" true (parse_fails {|node a :A {s: "\u-012"}|});
  check_bool "0x prefix rejected" true (parse_fails {|node a :A {s: "\u0x1f"}|});
  check_bool "non-hex rejected" true (parse_fails {|node a :A {s: "\u00gg"}|});
  check_bool "above U+00FF rejected" true (parse_fails {|node a :A {s: "\u0100"}|})

let test_print_parse_round_trip () =
  let g = G.empty in
  let g, a =
    G.add_node g ~label:"User"
      ~props:
        [
          ("id", V.Id "u\"1");
          ("names", V.List [ V.String "a"; V.Enum "X"; V.Int 3 ]);
          ("pi", V.Float 3.25);
          ("neg", V.Int (-7));
          ("flag", V.Bool false);
        ]
      ()
  in
  let g, b = G.add_node g ~label:"Thing" () in
  let g, _ = G.add_edge g ~label:"r" ~props:[ ("w", V.Float 0.5) ] a b in
  let reparsed = parse_ok (Pgf.print g) in
  check_bool "round-trip equal" true (G.equal g reparsed)

(* qcheck: print/parse round-trips on random graphs *)
let graph_gen =
  let open QCheck2.Gen in
  let atom =
    oneof
      [
        map (fun i -> V.Int i) small_signed_int;
        map (fun f -> V.Float f) (float_bound_inclusive 1000.0);
        map (fun s -> V.String s) (small_string ~gen:printable);
        map (fun b -> V.Bool b) bool;
        map (fun s -> V.Id s) (small_string ~gen:printable);
        map (fun i -> V.Enum (Printf.sprintf "E%d" (abs i))) small_signed_int;
      ]
  in
  let value = oneof [ atom; map (fun l -> V.List l) (list_size (int_bound 3) atom) ] in
  let label = map (fun i -> Printf.sprintf "L%d" (abs i mod 5)) small_signed_int in
  let props = list_size (int_bound 3) (pair (map (fun i -> Printf.sprintf "p%d" (abs i mod 6)) small_signed_int) value) in
  let* n = int_range 1 8 in
  let* node_specs = list_repeat n (pair label props) in
  let* edge_specs =
    list_size (int_bound 12) (tup4 (int_bound (n - 1)) (int_bound (n - 1)) label props)
  in
  return
    (let g = ref G.empty in
     let nodes =
       List.map
         (fun (label, props) ->
           let g', v = G.add_node !g ~label ~props () in
           g := g';
           v)
         node_specs
     in
     let nodes = Array.of_list nodes in
     List.iter
       (fun (i, j, label, props) ->
         let g', _ = G.add_edge !g ~label ~props nodes.(i) nodes.(j) in
         g := g')
       edge_specs;
     !g)

let prop_round_trip =
  QCheck2.Test.make ~name:"PGF print/parse round-trip" ~count:200 graph_gen (fun g ->
      match Pgf.parse (Pgf.print g) with Ok g' -> G.equal g g' | Error _ -> false)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basic;
    Alcotest.test_case "edge handle optional" `Quick test_edge_handle_optional;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "escapes" `Quick test_escapes;
    Alcotest.test_case "unicode escapes" `Quick test_unicode_escapes;
    Alcotest.test_case "print/parse round-trip" `Quick test_print_parse_round_trip;
    QCheck_alcotest.to_alcotest prop_round_trip;
  ]
