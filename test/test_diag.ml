(* The unified diagnostics core (lib/diag): registry integrity, byte
   parity of [Diag.to_text] with every producer's legacy printer, the
   exit-code policy, and end-to-end golden tests pinning the CLI's
   [--format json] envelopes on the examples/ inputs. *)

module GP = Graphql_pg
module Diag = GP.Diag
module Reg = GP.Diag_registry
module Source = GP.Sdl.Source
module Parser = GP.Sdl.Parser
module Lint = GP.Sdl.Lint

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* Paths relative to the test directory, independent of the cwd the
   runner happens to use (dune runtest vs dune exec). *)
let test_dir = Filename.dirname Sys.executable_name
let in_repo rel = Filename.concat test_dir rel

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let movies_schema () =
  match GP.Of_ast.parse (read_file (in_repo "../examples/movies.graphql")) with
  | Ok sch -> sch
  | Error msg -> Alcotest.failf "movies.graphql: %s" msg

let movies_graph () =
  match GP.Pgf.load (in_repo "../examples/movies.pgf") with
  | Ok g -> g
  | Error e -> Alcotest.failf "movies.pgf: %a" GP.Pgf.pp_error e

(* ---- registry ---- *)

let test_registry_codes_unique () =
  let codes = List.map (fun (e : Reg.entry) -> e.Reg.code) Reg.all in
  check_int "no duplicate codes" (List.length codes)
    (List.length (List.sort_uniq String.compare codes))

let test_registry_covers_validation_rules () =
  (* the registry's WS/DS/SS descriptions are the paper's captions *)
  List.iter
    (fun rule ->
      let code = GP.Violation.rule_name rule in
      match Reg.describe code with
      | None -> Alcotest.failf "rule %s not registered" code
      | Some doc -> check_string code (GP.Violation.rule_description rule) doc)
    GP.Violation.all_rules

let test_registry_covers_angles_rules () =
  for i = 1 to 12 do
    let code = Printf.sprintf "ANG%03d" i in
    check_bool (code ^ " registered") true (Reg.find code <> None)
  done;
  check_string "unknown rule falls back" "ANG000"
    (GP.Angles_validate.code_of_rule "no-such-rule")

let test_registry_classes () =
  check_bool "SDL001 is input" true (Reg.class_of "SDL001" = Reg.Input);
  check_bool "VAL001 is budget" true (Reg.class_of "VAL001" = Reg.Budget);
  check_bool "SAT004 is budget" true (Reg.class_of "SAT004" = Reg.Budget);
  check_bool "LINT003 is advice" true (Reg.class_of "LINT003" = Reg.Advice);
  check_bool "DIFF002 is advice" true (Reg.class_of "DIFF002" = Reg.Advice);
  check_bool "WS1 is finding" true (Reg.class_of "WS1" = Reg.Finding);
  check_bool "unknown code defaults to finding" true
    (Reg.class_of "XYZ999" = Reg.Finding)

(* ---- text parity: every producer's legacy printer vs Diag.to_text ---- *)

let parity name legacy diag = check_string name legacy (Diag.to_text diag)

let broken_sdl = "type B { y: }\ntype A { x: Int"

let test_source_error_parity () =
  match Parser.parse_with_recovery broken_sdl with
  | _, [] -> Alcotest.fail "expected syntax errors"
  | _, errors ->
    check_bool "several errors" true (List.length errors >= 2);
    List.iter
      (fun e -> parity "source error" (Source.error_to_string e) (Source.to_diagnostic e))
      errors

let test_recovery_errors_sorted () =
  (* parse_with_recovery reports errors in source order, deduplicated *)
  let _, errors = Parser.parse_with_recovery broken_sdl in
  let offsets = List.map (fun (e : Source.error) -> e.Source.at.Diag.span_start.Diag.offset) errors in
  check_bool "sorted by position" true (offsets = List.sort compare offsets);
  check_int "no duplicates" (List.length errors)
    (List.length (List.sort_uniq Source.compare_error errors))

let linty_sdl =
  {|
type __T { a: Int a: String @deprecated @deprecated }
type __T { b: Int }
|}

let test_lint_parity () =
  let doc =
    match Parser.parse linty_sdl with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "parse: %s" (Source.error_to_string e)
  in
  let issues = Lint.check doc in
  check_bool "lint issues found" true (List.length issues >= 3);
  check_bool "both severities present" true
    (List.exists (fun (i : Lint.issue) -> i.Lint.severity = Lint.Error) issues
    && List.exists (fun (i : Lint.issue) -> i.Lint.severity = Lint.Warning) issues);
  List.iter
    (fun i ->
      parity "lint issue" (Format.asprintf "%a" Lint.pp_issue i) (Lint.to_diagnostic i);
      let d = Lint.to_diagnostic i in
      check_bool ("LINT code: " ^ d.Diag.code) true (Reg.find d.Diag.code <> None))
    issues

let test_of_ast_parity () =
  (* one build error (nested list) and one warning (input-object argument
     dropped, Section 3.6) *)
  let parse_doc src =
    match Parser.parse src with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "parse: %s" (Source.error_to_string e)
  in
  (match GP.Of_ast.build (parse_doc "type T { xs: [[Int]] }") with
  | Ok _ -> Alcotest.fail "nested list accepted"
  | Error diags ->
    check_bool "build errors" true (diags <> []);
    List.iter
      (fun d ->
        parity "build error"
          (Format.asprintf "%a" GP.Of_ast.pp_diagnostic d)
          (GP.Of_ast.to_diagnostic d);
        check_string "code" "SCH001" (GP.Of_ast.to_diagnostic d).Diag.code)
      diags);
  match GP.Of_ast.build (parse_doc "input F { q: String }\ntype T { f(arg: F): Int }") with
  | Error _ -> Alcotest.fail "warning-only document rejected"
  | Ok (_, warnings) ->
    check_bool "dropped-argument warning" true (warnings <> []);
    List.iter
      (fun d ->
        parity "build warning"
          (Format.asprintf "%a" GP.Of_ast.pp_diagnostic d)
          (GP.Of_ast.to_diagnostic d);
        check_string "code" "SCH002" (GP.Of_ast.to_diagnostic d).Diag.code)
      warnings

let test_consistency_parity () =
  let src = "interface I { id: ID! }\ntype T implements I { name: String }" in
  match GP.Of_ast.parse_full ~consistency:false src with
  | Error _ -> Alcotest.fail "fixture did not build"
  | Ok (sch, _) ->
    let issues = GP.Consistency.check sch in
    check_bool "inconsistent fixture" true (issues <> []);
    List.iter
      (fun i ->
        parity "consistency issue" (GP.Consistency.issue_to_string i)
          (GP.Consistency.to_diagnostic i);
        let d = GP.Consistency.to_diagnostic i in
        check_string "code" (GP.Consistency.code i) d.Diag.code;
        check_bool ("registered: " ^ d.Diag.code) true (Reg.find d.Diag.code <> None))
      issues

let test_violation_parity_all_rules () =
  (* every rule x every subject shape renders identically through the
     legacy printer and the unified renderer *)
  let subjects =
    GP.Violation.
      [
        Node 3;
        Edge 7;
        Node_property (1, "age");
        Edge_property (2, "since");
        Node_pair (5, 4);
        Edge_pair (9, 8);
      ]
  in
  List.iter
    (fun rule ->
      List.iter
        (fun subject ->
          let v = GP.Violation.make rule subject "the engines agree on this fact" in
          parity
            (GP.Violation.rule_name rule)
            (GP.Violation.to_string v)
            (GP.Violation.to_diagnostic v))
        subjects)
    GP.Violation.all_rules

let test_real_violations_parity () =
  let report = GP.Validate.check (movies_schema ()) (movies_graph ()) in
  check_bool "movies graph has violations" true (report.GP.Validate.violations <> []);
  List.iter
    (fun v ->
      parity "violation" (GP.Violation.to_string v) (GP.Violation.to_diagnostic v))
    report.GP.Validate.violations

let test_schema_diff_parity () =
  let parse src =
    match GP.Of_ast.parse src with
    | Ok sch -> sch
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  let old_schema = parse "type T { a: Int b: String }" in
  let new_schema = parse "type T { a: Int! @required }" in
  let changes = GP.Schema_diff.diff old_schema new_schema in
  check_bool "changes found" true (changes <> []);
  check_bool "a breaking change is present" true
    (List.exists
       (fun (c : GP.Schema_diff.change) -> c.GP.Schema_diff.severity = GP.Schema_diff.Breaking)
       changes);
  List.iter
    (fun (c : GP.Schema_diff.change) ->
      parity "diff change"
        (Format.asprintf "%a" GP.Schema_diff.pp_change c)
        (GP.Schema_diff.to_diagnostic c);
      let d = GP.Schema_diff.to_diagnostic c in
      match c.GP.Schema_diff.severity with
      | GP.Schema_diff.Breaking ->
        check_string "breaking code" "DIFF001" d.Diag.code;
        check_bool "breaking is an error" true (d.Diag.severity = Diag.Error)
      | GP.Schema_diff.Compatible ->
        check_string "compatible code" "DIFF002" d.Diag.code;
        check_bool "compatible is info" true (d.Diag.severity = Diag.Info))
    changes

let test_angles_parity () =
  let ang, _dropped = GP.Angles_of_graphql.translate (movies_schema ()) in
  let violations = GP.Angles_validate.check ang (movies_graph ()) in
  check_bool "angles violations found" true (violations <> []);
  List.iter
    (fun v ->
      parity "angles violation"
        (Format.asprintf "%a" GP.Angles_validate.pp_violation v)
        (GP.Angles_validate.to_diagnostic v);
      let d = GP.Angles_validate.to_diagnostic v in
      check_bool ("ANG code: " ^ d.Diag.code) true (Reg.find d.Diag.code <> None))
    violations

let unsat_sdl =
  {|
type OT1 {
}
interface IT { hasOT1: OT1 @uniqueForTarget }
type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
|}

let test_sat_diagnostics () =
  let sch =
    match GP.Of_ast.parse_lenient unsat_sdl with
    | Ok sch -> sch
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  (* OT1 is unsatisfiable in both engines (the paper's Example 6.1 conflict) *)
  let report = GP.Satisfiability.check ~max_nodes:10 sch "OT1" in
  let diags = GP.Satisfiability.to_diagnostics "OT1" report in
  check_string "codes" "SAT002,SAT001"
    (String.concat "," (List.map (fun d -> d.Diag.code) diags));
  List.iter (fun d -> check_bool "severity" true (d.Diag.severity = Diag.Error)) diags;
  check_bool "unsat is a finding (exit 1)" true (Diag.Exit.classify diags = Diag.Exit.Findings);
  (* an exhausted budget turns the verdicts into SAT004 / exit 3 *)
  let gov = GP.Governor.make ~deadline_ms:0.0 () in
  let report = GP.Satisfiability.check ~gov sch "OT2" in
  let diags = GP.Satisfiability.to_diagnostics "OT2" report in
  check_bool "budget-unknown diagnostics" true
    (List.for_all (fun d -> d.Diag.code = "SAT004") diags && diags <> []);
  check_bool "budget classification" true (Diag.Exit.classify diags = Diag.Exit.Budget)

let test_validate_budget_diagnostics () =
  let gov = GP.Governor.make ~max_violations:1 () in
  let report = GP.Validate.check ~gov (movies_schema ()) (movies_graph ()) in
  check_bool "scan incomplete" true (not report.GP.Validate.complete);
  match GP.Validate.diagnostics report with
  | [] -> Alcotest.fail "no diagnostics"
  | first :: _ as diags ->
    check_string "budget diagnostic first" "VAL001" first.Diag.code;
    check_bool "classification" true (Diag.Exit.classify diags = Diag.Exit.Budget)

(* ---- the exit-code policy ---- *)

let test_exit_policy () =
  let e code = Diag.error ~code "m" and w code = Diag.warning ~code "m" in
  let classify = Diag.Exit.classify in
  check_bool "empty is clean" true (classify [] = Diag.Exit.Clean);
  check_bool "warnings alone are clean" true (classify [ w "LINT003" ] = Diag.Exit.Clean);
  check_bool "info alone is clean" true
    (classify [ Diag.info ~code:"DIFF002" "m" ] = Diag.Exit.Clean);
  check_bool "an error finding exits 1" true (classify [ e "WS1" ] = Diag.Exit.Findings);
  check_bool "unknown code errors count as findings" true
    (classify [ e "XYZ999" ] = Diag.Exit.Findings);
  check_bool "budget beats findings" true
    (classify [ e "WS1"; e "VAL001" ] = Diag.Exit.Budget);
  check_bool "input beats budget" true
    (classify [ e "VAL001"; e "SDL001" ] = Diag.Exit.Input_error);
  check_int "clean code" 0 Diag.Exit.(code Clean);
  check_int "findings code" 1 Diag.Exit.(code Findings);
  check_int "input code" 2 Diag.Exit.(code Input_error);
  check_int "budget code" 3 Diag.Exit.(code Budget);
  check_string "status strings" "ok,findings,input-error,budget-exhausted"
    (String.concat "," (List.map Diag.Exit.status
       Diag.Exit.[ Clean; Findings; Input_error; Budget ]))

(* ---- qcheck: parity and ordering survive arbitrary corruption ---- *)

let prop_corrupted_sdl_diagnostics =
  QCheck2.Test.make ~name:"recovery errors stay sorted and text-identical" ~count:100
    QCheck2.Gen.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let text = GP.Corruption.corrupt_text rng GP.Social.schema_text in
      let _, errors = Parser.parse_with_recovery text in
      let offsets =
        List.map (fun (e : Source.error) -> e.Source.at.Diag.span_start.Diag.offset) errors
      in
      offsets = List.sort compare offsets
      && List.for_all
           (fun e -> Source.error_to_string e = Diag.to_text (Source.to_diagnostic e))
           errors)

let prop_text_mode_output_unchanged =
  (* the legacy aggregated error string of Of_ast.parse is exactly the
     newline-join of the unified renderer over parse_full's diagnostics *)
  QCheck2.Test.make ~name:"Of_ast.parse error text is the joined Diag.to_text" ~count:60
    QCheck2.Gen.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let text = GP.Corruption.corrupt_text rng GP.Social.schema_text in
      match (GP.Of_ast.parse text, GP.Of_ast.parse_full text) with
      | Ok _, Ok _ -> true
      | Error msg, Error diags ->
        msg = String.concat "\n" (List.map Diag.to_text diags)
      | Ok _, Error _ | Error _, Ok _ -> false)

let prop_violation_text_parity =
  QCheck2.Test.make ~name:"violation text parity on corrupted graphs" ~count:25
    QCheck2.Gen.int (fun seed ->
      let sch = GP.Social.schema () in
      let g = GP.Social.generate ~seed ~persons:12 () in
      let g = GP.Social.corrupt_uniformly ~seed ~rate:0.3 sch g in
      let report = GP.Validate.check sch g in
      List.for_all
        (fun v -> GP.Violation.to_string v = Diag.to_text (GP.Violation.to_diagnostic v))
        report.GP.Validate.violations)

(* ---- golden tests: the CLI's --format json envelopes ---- *)

(* Run the real binary on the examples/ inputs and compare stdout
   byte-for-byte against test/golden/*.json, plus the exit code. *)
let run_cli args =
  let out = Filename.temp_file "gpgs_golden" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>/dev/null"
      (Filename.quote (in_repo "../bin/gpgs.exe"))
      args (Filename.quote out)
  in
  let code =
    match Sys.command cmd with
    | c when c land 0xff = 0 -> c lsr 8 (* some shells report status<<8 *)
    | c -> c
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let golden name = read_file (in_repo (Filename.concat "golden" name))

let check_golden ~expect_exit ~golden_file args =
  let code, out = run_cli args in
  check_int ("exit of gpgs " ^ args) expect_exit code;
  check_string ("stdout of gpgs " ^ args) (golden golden_file) out

let quote = Filename.quote
let movies_sdl_path () = quote (in_repo "../examples/movies.graphql")
let movies_pgf_path () = quote (in_repo "../examples/movies.pgf")
let broken_sdl_path () = quote (in_repo "../examples/broken.graphql")

let test_golden_parse () =
  check_golden ~expect_exit:2 ~golden_file:"parse_broken.json"
    (Printf.sprintf "parse %s --format json" (broken_sdl_path ()))

let test_golden_check () =
  check_golden ~expect_exit:0 ~golden_file:"check_movies.json"
    (Printf.sprintf "check %s --format json" (movies_sdl_path ()))

(* Pins the SDL001 diagnostics (codes, spans, messages) across the
   frontend-neutral IR boundary: `gpgs check` over a broken document must
   render byte-identically whatever refactors the schema core sees. *)
let test_golden_check_broken () =
  check_golden ~expect_exit:2 ~golden_file:"check_broken.json"
    (Printf.sprintf "check %s --format json" (broken_sdl_path ()))

let movies_pgs_path () = quote (in_repo "../examples/movies.pgs")

let test_golden_validate_pgschema () =
  check_golden ~expect_exit:1 ~golden_file:"validate_movies_pgs.json"
    (Printf.sprintf "validate %s %s --schema-lang pgschema --format json" (movies_pgs_path ())
       (movies_pgf_path ()))

let test_golden_validate () =
  check_golden ~expect_exit:1 ~golden_file:"validate_movies.json"
    (Printf.sprintf "validate %s %s --format json" (movies_sdl_path ()) (movies_pgf_path ()))

let test_golden_sat () =
  check_golden ~expect_exit:0 ~golden_file:"sat_movies.json"
    (Printf.sprintf "sat %s Movie --format json" (movies_sdl_path ()))

let test_text_mode_streams () =
  (* text mode keeps stdout for results and stderr for diagnostics *)
  let out = Filename.temp_file "gpgs_text" ".out" in
  let err = Filename.temp_file "gpgs_text" ".err" in
  let cmd =
    Printf.sprintf "%s parse %s > %s 2> %s"
      (quote (in_repo "../bin/gpgs.exe"))
      (broken_sdl_path ()) (quote out) (quote err)
  in
  let code =
    match Sys.command cmd with c when c land 0xff = 0 -> c lsr 8 | c -> c
  in
  let stdout_text = read_file out and stderr_text = read_file err in
  Sys.remove out;
  Sys.remove err;
  check_int "exit" 2 code;
  check_string "stdout is empty" "" stdout_text;
  check_bool "syntax errors go to stderr" true
    (stderr_text <> "" && String.length stderr_text > 0);
  (* one line per error, in source order — the first is the 1:13 one *)
  check_bool "first error first" true
    (String.length stderr_text >= 5 && String.sub stderr_text 0 5 = "1:13-")

let suite =
  [
    Alcotest.test_case "registry codes are unique" `Quick test_registry_codes_unique;
    Alcotest.test_case "registry covers WS/DS/SS" `Quick test_registry_covers_validation_rules;
    Alcotest.test_case "registry covers ANG rules" `Quick test_registry_covers_angles_rules;
    Alcotest.test_case "registry classes" `Quick test_registry_classes;
    Alcotest.test_case "source error text parity" `Quick test_source_error_parity;
    Alcotest.test_case "recovery errors sorted + deduped" `Quick test_recovery_errors_sorted;
    Alcotest.test_case "lint text parity" `Quick test_lint_parity;
    Alcotest.test_case "of_ast text parity" `Quick test_of_ast_parity;
    Alcotest.test_case "consistency text parity" `Quick test_consistency_parity;
    Alcotest.test_case "violation parity, all rules x subjects" `Quick
      test_violation_parity_all_rules;
    Alcotest.test_case "violation parity on the movies graph" `Quick
      test_real_violations_parity;
    Alcotest.test_case "schema diff parity + codes" `Quick test_schema_diff_parity;
    Alcotest.test_case "angles parity + codes" `Quick test_angles_parity;
    Alcotest.test_case "sat diagnostics + budget" `Quick test_sat_diagnostics;
    Alcotest.test_case "validate budget diagnostics" `Quick test_validate_budget_diagnostics;
    Alcotest.test_case "exit-code policy" `Quick test_exit_policy;
    QCheck_alcotest.to_alcotest prop_corrupted_sdl_diagnostics;
    QCheck_alcotest.to_alcotest prop_text_mode_output_unchanged;
    QCheck_alcotest.to_alcotest prop_violation_text_parity;
    Alcotest.test_case "golden: parse --format json" `Quick test_golden_parse;
    Alcotest.test_case "golden: check --format json" `Quick test_golden_check;
    Alcotest.test_case "golden: check on broken input" `Quick test_golden_check_broken;
    Alcotest.test_case "golden: validate --schema-lang pgschema" `Quick
      test_golden_validate_pgschema;
    Alcotest.test_case "golden: validate --format json" `Quick test_golden_validate;
    Alcotest.test_case "golden: sat --format json" `Quick test_golden_sat;
    Alcotest.test_case "text mode streams (stdout/stderr)" `Quick test_text_mode_streams;
  ]
