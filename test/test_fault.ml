(* The fault-injection plane (lib/fault) and everything rebased onto it:

   - plane semantics: passthrough inertness, Nth/Every/Prob triggers,
     limits, counters, plan scoping, the GPGS_FAULT clause language;
   - schedule transparency: Chunked and Netio must be observably
     unaffected by EINTR storms and pathological short reads/writes;
   - the crash-point matrix: kill the writer (a forked child) at every
     Durable crash point and prove the destination is absent, the old
     content, or the new content — never a torn file;
   - failure classification: injected device errors surface as IO006
     (fd-level) or IO001 (channel-level) from Snapshot_io, and ENOSPC
     is never retried as transient;
   - a qcheck differential: an installed-but-empty plan is byte-
     invisible to served validation;
   - server self-healing, live: the health op, the watchdog cancelling
     a wedged request (SRV006), EMFILE accept backoff, and a seeded
     chaos storm under which every request is answered or cleanly
     closed and the drain still completes.                              *)

module GP = Graphql_pg
module Json = GP.Json
module Fault = GP.Fault
module Durable = GP.Durable
module Sio = GP.Snapshot_io
module Service = Pg_server.Service
module Server = Pg_server.Server
module Netio = Pg_server.Netio

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_dir = Filename.dirname Sys.executable_name
let in_repo rel = Filename.concat test_dir rel
let movies_sdl = in_repo "../examples/movies.graphql"
let movies_pgf = in_repo "../examples/movies.pgf"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let with_temp_file f =
  let path = Filename.temp_file "gpgs_fault" ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    (fun () -> f path)

(* Every test must leave the global plane empty, even on failure. *)
let clean f = Fun.protect ~finally:Fault.deactivate f

(* ---- plane semantics ---- *)

let test_passthrough_inert () =
  clean @@ fun () ->
  Fault.deactivate ();
  check_bool "no plan active" false (Fault.active ());
  Fault.crash_point "durable.renamed";
  (* still alive *)
  with_temp_file (fun path ->
    let fd = Fault.openfile path [ Unix.O_WRONLY ] 0o644 in
    check_int "write is the primitive" 5 (Fault.write fd (Bytes.of_string "hello") 0 5);
    Fault.fsync fd;
    Unix.close fd;
    let ic = Fault.open_in_bin path in
    let b = Bytes.create 5 in
    check_int "input is the primitive" 5 (Fault.input ic b 0 5);
    check_string "bytes round-trip" "hello" (Bytes.to_string b);
    close_in ic)

let test_nth_trigger_and_counters () =
  clean @@ fun () ->
  with_temp_file @@ fun path ->
  write_file path "abcde";
  let p = Fault.plan [ Fault.on ~trigger:(Fault.Nth 3) Fault.Read (Fault.Errno Unix.EINTR) ] in
  Fault.with_plan p (fun () ->
    let ic = Fault.open_in_bin path in
    let b = Bytes.create 1 in
    let outcomes =
      List.init 5 (fun _ ->
        match Fault.input ic b 0 1 with
        | _ -> "ok"
        | exception Sys_error msg -> msg)
    in
    close_in ic;
    (* the channel surface raises the strerror(3) Sys_error, exactly
       what a real interrupted buffered read looks like *)
    check_string "only the 3rd read faults"
      (String.concat ","
         [ "ok"; "ok"; Unix.error_message Unix.EINTR; "ok"; "ok" ])
      (String.concat "," outcomes));
  check_int "5 read hits" 5 (Fault.hits p Fault.Read);
  check_int "1 injection" 1 (Fault.injected p Fault.Read);
  check_int "open uncounted as read" 0 (Fault.injected p Fault.Open)

let test_every_trigger_with_limit () =
  clean @@ fun () ->
  let p =
    Fault.plan
      [ Fault.on ~trigger:(Fault.Every 2) ~limit:2 Fault.Write (Fault.Errno Unix.EAGAIN) ]
  in
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close rd;
      Unix.close wr)
    (fun () ->
      Fault.with_plan p (fun () ->
        let b = Bytes.of_string "x" in
        let outcomes =
          List.init 6 (fun _ ->
            match Fault.write wr b 0 1 with
            | _ -> "ok"
            | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> "eagain")
        in
        (* Every 2 fires on hits 2, 4, 6 — but the limit caps it at 2 *)
        check_string "every-2nd write, twice" "ok,eagain,ok,eagain,ok,ok"
          (String.concat "," outcomes)));
  check_int "6 write hits" 6 (Fault.hits p Fault.Write);
  check_int "2 injections" 2 (Fault.injected p Fault.Write)

let test_partial_transfers () =
  clean @@ fun () ->
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close rd;
      Unix.close wr)
    (fun () ->
      let p =
        Fault.plan
          [
            Fault.on Fault.Write (Fault.Partial 2);
            Fault.on Fault.Read (Fault.Partial 1);
          ]
      in
      Fault.with_plan p (fun () ->
        let b = Bytes.of_string "hello" in
        check_int "write shortened to 2" 2 (Fault.write wr b 0 5);
        let buf = Bytes.create 5 in
        check_int "read shortened to 1" 1 (Fault.read rd buf 0 5);
        check_string "the right byte" "h" (Bytes.sub_string buf 0 1)))

let test_prob_is_seed_deterministic () =
  clean @@ fun () ->
  let schedule seed =
    let p =
      Fault.plan ~seed [ Fault.on ~trigger:(Fault.Prob 0.3) Fault.Read (Fault.Errno Unix.EIO) ]
    in
    let fd = Unix.openfile "/dev/zero" [ Unix.O_RDONLY ] 0 in
    let buf = Bytes.create 1 in
    let fired =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Fault.with_plan p (fun () ->
            List.init 200 (fun _ ->
              match Fault.read fd buf 0 1 with
              | _ -> false
              | exception Unix.Unix_error (Unix.EIO, _, _) -> true)))
    in
    (fired, Fault.injected p Fault.Read)
  in
  let a, na = schedule 42 in
  let b, nb = schedule 42 in
  let c, _ = schedule 43 in
  check_bool "same seed, same schedule" true (a = b);
  check_int "same seed, same injection count" na nb;
  check_bool "some fired" true (na > 0);
  check_bool "not all fired" true (na < 200);
  check_bool "different seed, different schedule" false (a = c)

let test_with_plan_restores () =
  clean @@ fun () ->
  let outer = Fault.plan [ Fault.on Fault.Write (Fault.Partial 1) ] in
  let inner = Fault.plan [] in
  Fault.activate outer;
  Fault.with_plan inner (fun () -> check_bool "inner active" true (Fault.active ()));
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close rd;
      Unix.close wr)
    (fun () ->
      check_int "outer plan restored (short write)" 1
        (Fault.write wr (Bytes.of_string "abc") 0 3);
      (match Fault.with_plan inner (fun () -> failwith "boom") with
      | _ -> Alcotest.fail "thunk should raise"
      | exception Failure _ -> ());
      check_int "restored after a raise too" 1 (Fault.write wr (Bytes.of_string "abc") 0 3));
  Fault.deactivate ();
  check_bool "deactivated" false (Fault.active ())

let test_of_spec () =
  clean @@ fun () ->
  (match Fault.of_spec "seed=42; read:eintr@3; write:partial=1%5; accept:emfilex2; crash@durable.renamed" with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "good spec rejected: %s" msg);
  List.iter
    (fun bad ->
      match Fault.of_spec bad with
      | Ok _ -> Alcotest.failf "bad spec accepted: %S" bad
      | Error _ -> ())
    [ ""; "read"; "read:bogus"; "tape:eintr"; "read:eintr@zero"; "seed=many" ];
  (* parsed plans behave like hand-built ones *)
  match Fault.of_spec "read:eintr@2" with
  | Error msg -> Alcotest.failf "spec rejected: %s" msg
  | Ok p ->
    with_temp_file (fun path ->
      write_file path "abc";
      Fault.with_plan p (fun () ->
        let ic = Fault.open_in_bin path in
        let b = Bytes.create 1 in
        let outcomes =
          List.init 3 (fun _ ->
            match Fault.input ic b 0 1 with _ -> "ok" | exception Sys_error _ -> "eintr")
        in
        close_in ic;
        check_string "spec semantics" "ok,eintr,ok" (String.concat "," outcomes)))

(* ---- schedule transparency: Chunked and Netio ---- *)

let collect_lines source =
  let acc = ref [] in
  GP.Chunked.iter_lines source (fun n line -> acc := (n, line) :: !acc);
  List.rev !acc

let test_chunked_unmoved_by_schedules () =
  clean @@ fun () ->
  with_temp_file @@ fun path ->
  let text = "alpha\nbeta\n\ngamma delta\nlast-no-newline" in
  write_file path text;
  let read_under plan_opt =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let go () = collect_lines (GP.Chunked.of_channel ~chunk_size:7 ic) in
        match plan_opt with None -> go () | Some p -> Fault.with_plan p go)
  in
  let baseline = read_under None in
  let eintr =
    read_under
      (Some (Fault.plan [ Fault.on ~trigger:(Fault.Every 3) Fault.Read (Fault.Errno Unix.EINTR) ]))
  in
  let dribble = read_under (Some (Fault.plan [ Fault.on Fault.Read (Fault.Partial 1) ])) in
  check_bool "EINTR storm is unobservable" true (baseline = eintr);
  check_bool "1-byte reads are unobservable" true (baseline = dribble);
  check_int "all lines seen" 5 (List.length baseline)

let test_netio_frames_under_schedules () =
  clean @@ fun () ->
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let p =
        Fault.plan
          [
            Fault.on ~trigger:(Fault.Every 2) Fault.Read (Fault.Errno Unix.EINTR);
            Fault.on ~trigger:(Fault.Every 3) Fault.Write (Fault.Partial 2);
          ]
      in
      Fault.with_plan p (fun () ->
        let conn = Netio.conn b in
        List.iter
          (fun payload ->
            (match Netio.write_frame a (payload ^ "\n") with
            | Ok () -> ()
            | Error msg -> Alcotest.failf "write_frame failed under schedule: %s" msg);
            match Netio.read_frame ~timeout_s:5. conn with
            | Netio.Frame got -> check_string "frame intact" payload got
            | _ -> Alcotest.fail "frame lost under schedule")
          [ {|{"op":"ping"}|}; String.make 300 'x'; "tail" ]);
      check_bool "the schedule actually hit reads" true (Fault.injected p Fault.Read > 0))

(* ---- the crash-point matrix ---- *)

let snapshot_graph () = GP.Social.generate ~seed:11 ~persons:8 ()

let write_snapshot path =
  let st = GP.Symtab.create () in
  match Sio.write st (GP.Snapshot.build st (snapshot_graph ())) path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "snapshot write failed: %a" Sio.pp_error e

let run_crash_writer spec =
  match String.split_on_char '|' spec with
  | [ "snapshot"; path ] -> write_snapshot path
  | [ "artifact"; path ] -> Durable.write_file path [ "hello "; "world\n" ]
  | [ "quarantine"; q; pgf ] -> ignore (GP.Stream.load_pgf ~quarantine:q pgf)
  | _ -> exit 8

(* Crash-matrix child hook: the matrix re-executes this very test
   binary with GPGS_FAULT arming the crash point (installed by the
   fault library's own startup hook, exactly as it would be in a real
   process under test) and GPGS_CRASH_WRITER naming the writer to run.
   A forked child would be simpler, but OCaml 5 forbids [Unix.fork]
   once any domain has been spawned and earlier suites run servers.
   Exit 0 = the writer survived (the point was never reached), 9 = the
   writer failed for a non-crash reason; the crash itself is
   [Fault.crash_exit_code]. *)
let () =
  match Sys.getenv_opt "GPGS_CRASH_WRITER" with
  | None -> ()
  | Some spec -> ( try run_crash_writer spec; exit 0 with _ -> exit 9)

let crash_child ~point spec =
  let cmd =
    Printf.sprintf "GPGS_FAULT=%s GPGS_CRASH_WRITER=%s %s >/dev/null 2>&1"
      (Filename.quote ("crash@" ^ point))
      (Filename.quote spec)
      (Filename.quote Sys.executable_name)
  in
  match Sys.command cmd with c when c land 0xff = 0 -> c lsr 8 | c -> c

let test_crash_matrix_snapshot () =
  clean @@ fun () ->
  with_temp_file @@ fun path ->
  Sys.remove path;
  List.iter
    (fun point ->
      let code = crash_child ~point ("snapshot|" ^ path) in
      check_int (point ^ ": child crashed") Fault.crash_exit_code code;
      if Sys.file_exists path then begin
        (match Sio.info path with
        | Ok i -> check_bool (point ^ ": committed file is whole") true (i.Sio.bytes > 0)
        | Error e ->
          Alcotest.failf "%s: crash left a torn snapshot: %a" point Sio.pp_error e);
        Sys.remove path
      end)
    Durable.crash_points;
  (* a stale temp from any of those crashes must not trouble the next
     writer: create truncates it *)
  write_snapshot path;
  match Sio.info path with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "write over stale temp: %a" Sio.pp_error e

let test_crash_matrix_preserves_old_content () =
  clean @@ fun () ->
  with_temp_file @@ fun path ->
  (* a valid predecessor must survive a crashed rewrite at any point:
     the destination is only ever replaced by a complete rename *)
  write_snapshot path;
  List.iter
    (fun point ->
      let code = crash_child ~point ("snapshot|" ^ path) in
      check_int (point ^ ": child crashed") Fault.crash_exit_code code;
      match Sio.info path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: predecessor torn: %a" point Sio.pp_error e)
    Durable.crash_points

let test_crash_matrix_artifact_and_quarantine () =
  clean @@ fun () ->
  with_temp_file @@ fun dest ->
  with_temp_file @@ fun quarantine ->
  with_temp_file @@ fun pgf ->
  Sys.remove dest;
  Sys.remove quarantine;
  write_file pgf "node n0 :A {}\nthis line is garbage\nnode n1 :B {}\nmore garbage\n";
  let expected_quarantine = "this line is garbage\nmore garbage\n" in
  List.iter
    (fun point ->
      (* the generic durable writer (bench artifacts use exactly this) *)
      let code = crash_child ~point ("artifact|" ^ dest) in
      check_int (point ^ ": artifact child crashed") Fault.crash_exit_code code;
      if Sys.file_exists dest then begin
        check_string (point ^ ": artifact whole") "hello world\n" (read_file dest);
        Sys.remove dest
      end;
      (* the streaming quarantine writer *)
      let code = crash_child ~point ("quarantine|" ^ quarantine ^ "|" ^ pgf) in
      check_int (point ^ ": quarantine child crashed") Fault.crash_exit_code code;
      if Sys.file_exists quarantine then begin
        check_string (point ^ ": quarantine whole") expected_quarantine (read_file quarantine);
        Sys.remove quarantine
      end)
    Durable.crash_points

(* Same CLI runner as test_server.ml, plus an environment prefix — the
   GPGS_FAULT hook is what lets the matrix kill a real gpgs process. *)
let run_cli ?(env = "") args =
  let out = Filename.temp_file "gpgs_fault" ".out" in
  let cmd =
    Printf.sprintf "%s%s %s > %s 2>/dev/null"
      (if env = "" then "" else env ^ " ")
      (Filename.quote (in_repo "../bin/gpgs.exe"))
      args (Filename.quote out)
  in
  let code = match Sys.command cmd with c when c land 0xff = 0 -> c lsr 8 | c -> c in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let test_crash_matrix_end_to_end_cli () =
  clean @@ fun () ->
  with_temp_file @@ fun snap ->
  Sys.remove snap;
  let build env =
    run_cli ~env
      (Printf.sprintf "snapshot build %s -o %s" (Filename.quote movies_pgf)
         (Filename.quote snap))
  in
  let code, _ = build "GPGS_FAULT='crash@durable.file_synced'" in
  check_int "gpgs died at the crash point" Fault.crash_exit_code code;
  check_bool "no destination before the rename" false (Sys.file_exists snap);
  (* a malformed spec must refuse to run, not silently pass through *)
  let code, _ = build "GPGS_FAULT='read:bogus'" in
  check_int "typo'd fault plan refuses to run" 2 code;
  check_bool "and writes nothing" false (Sys.file_exists snap);
  (* and with the plane inert the same build succeeds and verifies *)
  let code, _ = build "" in
  check_int "clean build" 0 code;
  match Sio.info snap with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean build unreadable: %a" Sio.pp_error e

(* ---- failure classification ---- *)

let code_of = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> e.Sio.code

let message_of = function Ok _ -> "" | Error e -> e.Sio.message

let test_io006_classification () =
  clean @@ fun () ->
  with_temp_file @@ fun path ->
  write_snapshot path;
  let st () = GP.Symtab.create () in
  (* a refused mmap is a device-level failure: IO006, naming the file *)
  let r =
    Fault.with_plan
      (Fault.plan [ Fault.on Fault.Mmap (Fault.Errno Unix.EIO) ])
      (fun () -> Result.map (fun m -> Sio.close_mapped m) (Sio.open_mapped (st ()) path))
  in
  check_string "mmap EIO -> IO006" "IO006" (code_of r);
  check_bool "IO006 names the snapshot" true
    (String.length (message_of r) > 0
    &&
    let m = message_of r in
    let needle = Filename.basename path in
    let rec find i =
      i + String.length needle <= String.length m
      && (String.sub m i (String.length needle) = needle || find (i + 1))
    in
    find 0);
  (* open_mapped opens the header channel first (buffered: Sys_error ->
     IO001), then the mmap fd (raw: Unix_error -> IO006) *)
  let open_under rule =
    Fault.with_plan (Fault.plan [ rule ])
      (fun () -> Result.map (fun m -> Sio.close_mapped m) (Sio.open_mapped (st ()) path))
  in
  check_string "channel open EIO -> IO001" "IO001"
    (code_of (open_under (Fault.on ~trigger:(Fault.Nth 1) Fault.Open (Fault.Errno Unix.EIO))));
  check_string "fd open EIO -> IO006" "IO006"
    (code_of (open_under (Fault.on ~trigger:(Fault.Nth 2) Fault.Open (Fault.Errno Unix.EIO))));
  (* a device error on a property page read mid-load: the buffered
     channel surfaces it as Sys_error, classified IO001 with the
     snapshot path (the IO006 arm covers raw Unix_error readers) *)
  match Sio.open_mapped (st ()) path with
  | Error e -> Alcotest.failf "clean open failed: %a" Sio.pp_error e
  | Ok m ->
    Fun.protect
      ~finally:(fun () -> Sio.close_mapped m)
      (fun () ->
        let r =
          Fault.with_plan
            (Fault.plan [ Fault.on Fault.Read (Fault.Errno Unix.EIO) ])
            (fun () -> Sio.load_node_props m ~lo:0 ~hi:1)
        in
        match r with
        | Ok () -> Alcotest.fail "faulted page read succeeded"
        | Error e ->
          check_string "page-read EIO classified" "IO001" e.Sio.code;
          check_bool "names the read failure" true
            (e.Sio.message <> "" && e.Sio.code = "IO001"))

let test_enospc_is_not_transient () =
  let t = GP.Supervisor.default_transient in
  check_bool "EINTR is transient" true (t (Unix.Unix_error (Unix.EINTR, "read", "")));
  check_bool "EAGAIN is transient" true (t (Unix.Unix_error (Unix.EAGAIN, "read", "")));
  (* retrying a full disk burns the retry budget for nothing *)
  check_bool "ENOSPC is not" false (t (Unix.Unix_error (Unix.ENOSPC, "write", "")));
  check_bool "EIO is not" false (t (Unix.Unix_error (Unix.EIO, "read", "")))

(* ---- passthrough differential (qcheck) ---- *)

let validate_req ~schema ~graph =
  Json.to_string
    (Json.Assoc
       [
         ("op", Json.String "validate");
         ("schema", Json.String schema);
         ("graph", Json.String graph);
       ])

let test_passthrough_differential =
  QCheck.Test.make ~name:"an empty plan is byte-invisible to served validation" ~count:8
    QCheck.(pair (int_range 1 20) (int_range 0 1000))
    (fun (persons, seed) ->
      clean @@ fun () ->
      let sch = Filename.temp_file "gpgs_fault" ".graphql" in
      let pgf = Filename.temp_file "gpgs_fault" ".pgf" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove sch;
          Sys.remove pgf)
        (fun () ->
          write_file sch GP.Social.schema_text;
          let g = GP.Social.generate ~seed ~persons () in
          let g =
            if seed mod 2 = 0 then
              GP.Social.corrupt_uniformly ~seed ~rate:0.2 (GP.Social.schema ()) g
            else g
          in
          write_file pgf (GP.Pgf.print g);
          let req = validate_req ~schema:sch ~graph:pgf in
          Fault.deactivate ();
          let bare = Service.handle (Service.create ()) req in
          let planned =
            Fault.with_plan (Fault.plan []) (fun () -> Service.handle (Service.create ()) req)
          in
          check_string
            (Printf.sprintf "persons=%d seed=%d" persons seed)
            bare planned;
          true))

(* ---- server self-healing, live ---- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_line fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let rec go pos =
    if pos < Bytes.length b then go (pos + Unix.write fd b pos (Bytes.length b - pos))
  in
  go 0

let recv_line fd =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
      if Bytes.get one 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get one 0);
        go ()
      end
  in
  go ()

let roundtrip fd line =
  send_line fd line;
  recv_line fd

let decode line =
  match Json.of_string line with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response is not JSON (%s): %s" msg line

let exit_of j = match Json.member "exit" j with Json.Int c -> c | _ -> -1

let codes_of j =
  match Json.member "diagnostics" j with
  | Json.List ds ->
    List.map (fun d -> match Json.member "code" d with Json.String c -> c | _ -> "?") ds
  | _ -> []

let has_code code j = List.mem code (codes_of j)

let summary_of j = Json.member "summary" j

let with_server ?(workers = 2) ?(watchdog_grace_ms = 10_000.)
    ?(svc_config = Service.default_config) f =
  let path = Filename.temp_file "gpgs_fault_srv" ".sock" in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let svc = Service.create ~config:svc_config () in
  let config =
    {
      (Server.default_config (Server.Unix_socket path)) with
      Server.workers;
      read_timeout_ms = 10_000.;
      drain_grace_ms = 3_000.;
      watchdog_grace_ms;
    }
  in
  let daemon =
    Domain.spawn (fun () ->
      Server.run ~stop ~on_ready:(fun _ -> Atomic.set ready true) config svc)
  in
  let rec await n =
    if Atomic.get ready then ()
    else if n = 0 then Alcotest.fail "server never became ready"
    else begin
      Unix.sleepf 0.01;
      await (n - 1)
    end
  in
  await 1000;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join daemon;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path svc)

let test_live_health_op () =
  clean @@ fun () ->
  with_server (fun path _svc ->
    let fd = connect path in
    ignore (roundtrip fd {|{"op":"ping"}|});
    let j = decode (roundtrip fd {|{"op":"health"}|}) in
    Unix.close fd;
    check_int "health exit" 0 (exit_of j);
    let s = summary_of j in
    let int_field name =
      match Json.member name s with
      | Json.Int n -> n
      | _ -> Alcotest.failf "health summary lacks int field %S" name
    in
    check_bool "uptime present" true
      (match Json.member "uptime_s" s with Json.Float u -> u >= 0. | _ -> false);
    check_bool "requests counted" true (int_field "requests" >= 2);
    check_int "nothing wedged" 0 (int_field "in_flight_jobs");
    check_int "nothing cancelled" 0 (int_field "watchdog_cancelled");
    (* probe fields: what only the accept loop can see *)
    check_int "worker count" 2 (int_field "workers");
    check_int "accept backoffs" 0 (int_field "accept_backoffs");
    check_bool "not draining" true
      (match Json.member "draining" s with Json.Bool b -> not b | _ -> false))

let test_live_watchdog_cancels_wedged () =
  clean @@ fun () ->
  let svc_config = { Service.default_config with Service.debug_ops = true } in
  with_server ~watchdog_grace_ms:100. ~svc_config (fun path svc ->
    let fd = connect path in
    let t0 = Unix.gettimeofday () in
    (* wedged for 30 s unless someone cancels it; the watchdog must *)
    let j = decode (roundtrip fd {|{"op":"stall","seconds":30}|}) in
    let elapsed = Unix.gettimeofday () -. t0 in
    check_bool "SRV006" true (has_code "SRV006" j);
    check_int "budget exit class" 3 (exit_of j);
    check_bool "cancelled promptly, not served to completion" true (elapsed < 10.);
    check_bool "cancellation counted" true (Service.watchdog_cancelled svc >= 1);
    (* the wedged job's cancellation is private: the server still serves *)
    check_int "still serving" 0 (exit_of (decode (roundtrip fd {|{"op":"ping"}|})));
    Unix.close fd)

let test_live_accept_backoff () =
  clean @@ fun () ->
  with_server (fun path _svc ->
    let p = Fault.plan [ Fault.on ~limit:2 Fault.Accept (Fault.Errno Unix.EMFILE) ] in
    Fault.activate p;
    let fd = connect path in
    (* the two EMFILE hits cost backoff sleeps, not the listener: the
       third accept succeeds and the request is served normally.  The
       roundtrip completing proves the accept happened, so the plan can
       only be dropped after it (the [clean] wrapper backstops). *)
    let ping = decode (roundtrip fd {|{"op":"ping"}|}) in
    Fault.deactivate ();
    check_int "served after backoff" 0 (exit_of ping);
    check_int "both refusals injected" 2 (Fault.injected p Fault.Accept);
    let j = decode (roundtrip fd {|{"op":"health"}|}) in
    check_bool "backoffs reported" true
      (match Json.member "accept_backoffs" (summary_of j) with
      | Json.Int n -> n >= 2
      | _ -> false);
    Unix.close fd)

(* ---- the seeded chaos storm ---- *)

let chaos_seeds () =
  let base = [ 11; 23; 47 ] in
  match Sys.getenv_opt "GPGS_CHAOS_SEEDS" with
  | None | Some "" -> base
  | Some s ->
    base
    @ (String.split_on_char ',' s
      |> List.filter_map (fun x -> int_of_string_opt (String.trim x)))

let chaos_plan seed =
  Fault.plan ~seed
    [
      Fault.on ~trigger:(Fault.Prob 0.05) Fault.Read (Fault.Errno Unix.EINTR);
      Fault.on ~trigger:(Fault.Prob 0.05) Fault.Read (Fault.Partial 1);
      Fault.on ~trigger:(Fault.Prob 0.03) Fault.Write (Fault.Partial 2);
      Fault.on ~trigger:(Fault.Prob 0.01) Fault.Read (Fault.Errno Unix.EIO);
      Fault.on ~trigger:(Fault.Prob 0.02) Fault.Accept (Fault.Errno Unix.EMFILE);
    ]

(* One client's worth of storm traffic.  The invariant under injection
   is weaker than correctness but ironclad: every request is answered
   with valid JSON or the connection is closed cleanly — never a hang,
   never garbage, and (checked by the harness) never a dead server. *)
let storm_client ~seed ~id path =
  let requests =
    [
      {|{"op":"ping"}|};
      {|{"op":"health"}|};
      validate_req ~schema:movies_sdl ~graph:movies_pgf;
      "{{{ definitely not json";
      {|{"op":"ping"}|};
    ]
  in
  let fresh () = connect path in
  let fd = ref (fresh ()) in
  for round = 1 to 3 do
    List.iteri
      (fun i req ->
        match
          send_line !fd req;
          recv_line !fd
        with
        | "" ->
          (* clean close (EOF): reconnect and keep storming *)
          (try Unix.close !fd with Unix.Unix_error _ -> ());
          fd := fresh ()
        | line -> (
          match Json.of_string line with
          | Ok _ -> ()
          | Error msg ->
            Alcotest.failf "seed %d client %d round %d req %d: garbage response (%s): %s"
              seed id round i msg line)
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          (try Unix.close !fd with Unix.Unix_error _ -> ());
          fd := fresh ())
      requests
  done;
  try Unix.close !fd with Unix.Unix_error _ -> ()

let test_chaos_storm () =
  clean @@ fun () ->
  List.iter
    (fun seed ->
      with_server ~workers:3 (fun path _svc ->
        Fault.activate (chaos_plan seed);
        let clients =
          List.init 3 (fun id -> Domain.spawn (fun () -> storm_client ~seed ~id path))
        in
        List.iter Domain.join clients;
        Fault.deactivate ();
        (* after the storm the server must be healthy, and the
           with_server finalizer proves the drain still completes *)
        let fd = connect path in
        check_int
          (Printf.sprintf "seed %d: healthy after the storm" seed)
          0
          (exit_of (decode (roundtrip fd {|{"op":"ping"}|})));
        Unix.close fd))
    (chaos_seeds ())

let suite =
  [
    Alcotest.test_case "plane: passthrough is inert" `Quick test_passthrough_inert;
    Alcotest.test_case "plane: Nth trigger and counters" `Quick test_nth_trigger_and_counters;
    Alcotest.test_case "plane: Every trigger with limit" `Quick test_every_trigger_with_limit;
    Alcotest.test_case "plane: partial transfers" `Quick test_partial_transfers;
    Alcotest.test_case "plane: Prob is seed-deterministic" `Quick test_prob_is_seed_deterministic;
    Alcotest.test_case "plane: with_plan restores" `Quick test_with_plan_restores;
    Alcotest.test_case "plane: GPGS_FAULT spec language" `Quick test_of_spec;
    Alcotest.test_case "chunked: unmoved by fault schedules" `Quick test_chunked_unmoved_by_schedules;
    Alcotest.test_case "netio: frames survive schedules" `Quick test_netio_frames_under_schedules;
    Alcotest.test_case "crash matrix: snapshot writer" `Quick test_crash_matrix_snapshot;
    Alcotest.test_case "crash matrix: old content survives" `Quick
      test_crash_matrix_preserves_old_content;
    Alcotest.test_case "crash matrix: artifacts and quarantine" `Quick
      test_crash_matrix_artifact_and_quarantine;
    Alcotest.test_case "crash matrix: end-to-end gpgs via GPGS_FAULT" `Quick
      test_crash_matrix_end_to_end_cli;
    Alcotest.test_case "classification: IO006 vs IO001" `Quick test_io006_classification;
    Alcotest.test_case "classification: ENOSPC not transient" `Quick test_enospc_is_not_transient;
    QCheck_alcotest.to_alcotest test_passthrough_differential;
    Alcotest.test_case "live: health op" `Quick test_live_health_op;
    Alcotest.test_case "live: watchdog cancels a wedged request" `Quick
      test_live_watchdog_cancels_wedged;
    Alcotest.test_case "live: EMFILE accept backoff" `Quick test_live_accept_backoff;
    Alcotest.test_case "live: seeded chaos storm" `Slow test_chaos_storm;
  ]
