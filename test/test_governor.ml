(* Budgeted validation (the resource governor).

   - An infinite budget is invisible: reports are byte-identical to the
     ungoverned ones, [complete] is true and the scan counters equal the
     graph totals.
   - A finite budget yields a well-formed partial report: its violations
     are a subset of the full report's (every engine), and whenever
     [complete] is true the report is byte-identical to the full one.
   - [--max-violations]-style budgets stop deterministically.
   - A zero deadline terminates promptly (the test finishing is the
     assertion) and still satisfies the subset invariant.
   - Satisfiability under a zero deadline degrades to [Unknown] verdicts
     flagged by [budget_exhausted], never an exception or a hang. *)

module G = Graphql_pg.Property_graph
module Val = Graphql_pg.Validate
module Vi = Graphql_pg.Violation
module Gov = Graphql_pg.Governor
module Sat = Graphql_pg.Satisfiability
module Schema_gen = Graphql_pg.Schema_gen
module Instance_gen = Graphql_pg.Instance_gen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seeded_rng seed = Random.State.make [| seed; 0xB06E7 |]
let engines = [ Val.Naive; Val.Linear; Val.Indexed; Val.Parallel; Val.Sharded ]

let engine_name = function
  | Val.Naive -> "naive"
  | Val.Linear -> "linear"
  | Val.Indexed -> "indexed"
  | Val.Parallel -> "parallel"
  | Val.Sharded -> "sharded"

let ok_schema text =
  match Graphql_pg.Of_ast.parse text with
  | Ok sch -> sch
  | Error msg -> Alcotest.failf "schema: %s" msg

(* every violation of [part] appears in [full] (rule + subject) *)
let subset ~full part = List.for_all (fun v -> List.exists (Vi.equal v) full) part

let rendered report = List.map Vi.to_string report.Val.violations

(* ten nodes, each missing its @required property: at least ten
   independent violations, deterministically *)
let required_schema = ok_schema "type A { x: Int @required }"

let many_bad n =
  let rec go g i = if i = n then g else go (fst (G.add_node g ~label:"A" ())) (i + 1) in
  go G.empty 0

let test_unlimited_invisible () =
  let sch = required_schema in
  let g = many_bad 10 in
  List.iter
    (fun engine ->
      let plain = Val.check ~engine sch g in
      let governed = Val.check ~engine ~gov:Gov.unlimited sch g in
      check_bool (engine_name engine ^ ": identical") true
        (List.equal String.equal (rendered plain) (rendered governed));
      check_bool "complete" true governed.Val.complete;
      check_int "nodes_scanned" (G.node_count g) governed.Val.nodes_scanned;
      check_int "edges_scanned" (G.edge_count g) governed.Val.edges_scanned)
    engines

let test_max_violations_stops () =
  let sch = required_schema in
  let g = many_bad 10 in
  List.iter
    (fun engine ->
      let full = (Val.check ~engine sch g).Val.violations in
      let gov = Gov.make ~max_violations:3 () in
      let part = Val.check ~engine ~gov sch g in
      check_bool (engine_name engine ^ ": incomplete") false part.Val.complete;
      check_bool "found at least one" true (part.Val.violations <> []);
      check_bool "subset of full" true (subset ~full part.Val.violations))
    engines

let test_zero_deadline_terminates () =
  let sch = required_schema in
  let g = many_bad 50 in
  List.iter
    (fun engine ->
      let full = (Val.check ~engine sch g).Val.violations in
      let part = Val.check ~engine ~gov:(Gov.make ~deadline_ms:0.0 ()) sch g in
      check_bool (engine_name engine ^ ": subset") true (subset ~full part.Val.violations);
      if part.Val.complete then
        check_bool "complete implies identical" true
          (List.equal Vi.equal part.Val.violations full))
    engines

let test_cancellation () =
  let cancel = Atomic.make true in
  let part =
    Val.check ~engine:Val.Indexed ~gov:(Gov.make ~cancel ()) required_schema (many_bad 10)
  in
  check_bool "cancelled run is incomplete" false part.Val.complete;
  check_int "nothing scanned" 0 part.Val.nodes_scanned

let test_incremental_complete () =
  let sch = required_schema in
  let g = many_bad 10 in
  let full = Graphql_pg.Incremental.create sch g in
  check_bool "ungoverned create is complete" true (Graphql_pg.Incremental.complete full);
  let part = Graphql_pg.Incremental.create ~gov:(Gov.make ~max_violations:2 ()) sch g in
  check_bool "budgeted create is incomplete" false (Graphql_pg.Incremental.complete part);
  check_bool "incomplete state is not valid" false (Graphql_pg.Incremental.is_valid part)

(* Schemas whose only models are infinite chase the witness search; a
   zero deadline must cut it off with a flagged Unknown. *)
let loop_schema = ok_schema "type A { b: B! @required }\ntype B { a: A! @required }"

let test_sat_zero_deadline () =
  let report = Sat.check ~gov:(Gov.make ~deadline_ms:0.0 ()) loop_schema "A" in
  check_bool "budget exhausted" true (Sat.budget_exhausted report);
  let unbudgeted = Sat.check loop_schema "A" in
  check_bool "no budget, no exhaustion" false (Sat.budget_exhausted unbudgeted)

let test_check_all_sliced () =
  let reports = Sat.check_all ~gov:(Gov.make ~deadline_ms:0.0 ()) loop_schema in
  check_int "both types reported" 2 (List.length reports);
  List.iter
    (fun (ot, r) ->
      check_bool (ot ^ " exhausted its slice") true (Sat.budget_exhausted r))
    reports

let prop_partial_subset =
  QCheck2.Test.make
    ~name:"budgeted reports are subsets of full reports; complete means identical"
    ~count:100
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 5))
    (fun (seed, maxv) ->
      let rng = seeded_rng seed in
      let sch = Schema_gen.random_schema rng in
      let g = Instance_gen.fuzz rng sch ~max_nodes:10 in
      List.for_all
        (fun engine ->
          let full = (Val.check ~engine sch g).Val.violations in
          let part = Val.check ~engine ~gov:(Gov.make ~max_violations:maxv ()) sch g in
          subset ~full part.Val.violations
          && ((not part.Val.complete) || List.equal Vi.equal part.Val.violations full))
        engines)

let prop_generous_budget_identical =
  QCheck2.Test.make
    ~name:"a budget that never fires leaves all five engines byte-identical"
    ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = seeded_rng seed in
      let sch = Schema_gen.random_schema rng in
      let g = Instance_gen.fuzz rng sch ~max_nodes:8 in
      let gov = Gov.make ~deadline_ms:3_600_000.0 ~max_violations:max_int () in
      let plain = List.map Vi.to_string (Val.check ~engine:Val.Naive sch g).Val.violations in
      let governed engine = Val.check ~engine ~gov sch g in
      let inc = Graphql_pg.Incremental.create ~gov sch g in
      List.for_all
        (fun engine ->
          let r = governed engine in
          r.Val.complete && List.equal String.equal plain (rendered r))
        engines
      && Graphql_pg.Incremental.complete inc
      && List.equal String.equal plain
           (List.map Vi.to_string (Graphql_pg.Incremental.violations inc)))

let suite =
  [
    Alcotest.test_case "unlimited budget is invisible" `Quick test_unlimited_invisible;
    Alcotest.test_case "max-violations stops early" `Quick test_max_violations_stops;
    Alcotest.test_case "zero deadline terminates promptly" `Quick
      test_zero_deadline_terminates;
    Alcotest.test_case "pre-cancelled run scans nothing" `Quick test_cancellation;
    Alcotest.test_case "incremental tracks completeness" `Quick test_incremental_complete;
    Alcotest.test_case "sat: zero deadline flags exhaustion" `Quick test_sat_zero_deadline;
    Alcotest.test_case "sat: check_all time-slices all types" `Quick test_check_all_sliced;
    QCheck_alcotest.to_alcotest prop_partial_subset;
    QCheck_alcotest.to_alcotest prop_generous_budget_identical;
  ]
