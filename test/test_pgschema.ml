(* The PG-Schema frontend (lib/pgschema): lexer/parser units, recovering
   multi-error parses, the lowering onto the shared schema IR, the
   To_pgschema export, and the cross-expressiveness guarantee — an SDL
   schema and its PG-Schema translation produce byte-identical
   validation reports across every engine. *)

module GP = Graphql_pg
module Ast = GP.Pgschema.Ast
module Lexer = GP.Pgschema.Lexer
module Parser = GP.Pgschema.Parser
module Printer = GP.Pgschema.Printer
module Lower = GP.Pgschema.Lower
module To_pgschema = GP.Pgschema.To_pgschema
module Token = GP.Pgschema.Token
module Val = GP.Validate
module Vi = GP.Violation
module Sm = Map.Make (String)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let movies_pgs =
  {|CREATE GRAPH TYPE Movies STRICT {
  (Person { name STRING, OPTIONAL born INT }),
  (Movie { title STRING, OPTIONAL released INT }),
  (:Movie)-[directedBy]->(:Person) OUT 1..1,
  (:Movie)-[cast { OPTIONAL role STRING }]->(:Person) OUT 0..*
}|}

(* The same schema written in SDL, lowering to the identical IR. *)
let movies_sdl =
  {|type Person {
  name: String! @required
  born: Int
}
type Movie {
  title: String! @required
  released: Int
  directedBy: Person! @required
  cast(role: String): [Person!]
}|}

let lower_exn text =
  match Lower.parse_full text with
  | Ok (sch, _warnings) -> sch
  | Error diags ->
    Alcotest.failf "does not lower: %s"
      (String.concat "; " (List.map GP.Diag.to_text diags))

let errors_of text =
  match Lower.parse_full text with
  | Ok _ -> Alcotest.fail "expected diagnostics"
  | Error diags -> diags

let codes diags = List.map (fun d -> d.GP.Diag.code) diags

(* ---- lexer ---- *)

let test_lexer_tokens () =
  let toks =
    match Lexer.tokenize "(:A)-[e]->(:B) OUT 0..* // trailing\n/* block */ &" with
    | Ok toks -> List.map (fun t -> t.Token.token) toks
    | Error e -> Alcotest.failf "lex error: %s" e.GP.Sdl.Source.message
  in
  check_bool "token stream" true
    (toks
    = [
        Token.Paren_open; Token.Colon; Token.Name "A"; Token.Paren_close; Token.Dash;
        Token.Bracket_open; Token.Name "e"; Token.Bracket_close; Token.Arrow;
        Token.Paren_open; Token.Colon; Token.Name "B"; Token.Paren_close;
        Token.Name "OUT"; Token.Int 0; Token.Dot_dot; Token.Star; Token.Amp; Token.Eof;
      ])

let test_lexer_unterminated_comment () =
  match Lexer.tokenize "(A) /* never closed" with
  | Ok _ -> Alcotest.fail "expected a lex error"
  | Error e -> check_string "message" "unterminated comment" e.GP.Sdl.Source.message

(* ---- parser ---- *)

let test_parse_movies () =
  match Parser.parse movies_pgs with
  | Error e -> Alcotest.failf "parse error: %s" e.GP.Sdl.Source.message
  | Ok [ gt ] ->
    check_string "name" "Movies" gt.Ast.gt_name;
    check_bool "strict" true (gt.Ast.gt_mode = Ast.Strict);
    check_int "elements" 4 (List.length gt.Ast.gt_elements);
    (match gt.Ast.gt_elements with
    | Ast.Node_type person :: _ ->
      check_bool "labels" true (person.Ast.n_labels = [ "Person" ]);
      check_int "props" 2 (List.length person.Ast.n_props);
      let born = List.nth person.Ast.n_props 1 in
      check_bool "born optional" true born.Ast.p_optional
    | _ -> Alcotest.fail "first element is not a node type");
    (match List.nth gt.Ast.gt_elements 2 with
    | Ast.Edge_type e ->
      check_string "edge label" "directedBy" e.Ast.e_label;
      check_bool "out 1..1" true (e.Ast.e_out = Some { Ast.c_lo = 1; c_hi = Some 1 });
      check_bool "no in" true (e.Ast.e_in = None)
    | _ -> Alcotest.fail "third element is not an edge type")
  | Ok _ -> Alcotest.fail "expected one graph type"

let test_parse_features () =
  let text =
    {|CREATE GRAPH TYPE G LOOSE {
      (personType : Person & Taxpayer OPEN { name STRING, ids INT ARRAY, OPTIONAL optional STRING }),
      (:personType)-[knows]->(:Person) OUT 0..* IN 1..1
    }|}
  in
  match Parser.parse text with
  | Error e -> Alcotest.failf "parse error: %s" e.GP.Sdl.Source.message
  | Ok [ gt ] -> (
    check_bool "loose" true (gt.Ast.gt_mode = Ast.Loose);
    match gt.Ast.gt_elements with
    | [ Ast.Node_type n; Ast.Edge_type e ] ->
      check_bool "type name" true (n.Ast.n_name = Some "personType");
      check_bool "labels" true (n.Ast.n_labels = [ "Person"; "Taxpayer" ]);
      check_bool "open" true n.Ast.n_open;
      check_bool "array" true (List.nth n.Ast.n_props 1).Ast.p_array;
      (* a property may itself be named "optional" *)
      let last = List.nth n.Ast.n_props 2 in
      check_bool "property named optional" true
        (last.Ast.p_optional && last.Ast.p_name = "optional");
      check_bool "endpoint by type name" true (e.Ast.e_src.Ast.ep_ref = "personType");
      check_bool "in 1..1" true (e.Ast.e_in = Some { Ast.c_lo = 1; c_hi = Some 1 })
    | _ -> Alcotest.fail "unexpected elements")
  | Ok _ -> Alcotest.fail "expected one graph type"

let test_parse_bad_cardinality () =
  match Parser.parse "CREATE GRAPH TYPE G { (:A)-[e]->(:B) OUT 3..1 }" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
    check_string "message" "cardinality upper bound 1 is below lower bound 3"
      e.GP.Sdl.Source.message

(* Three independent errors in one document: the recovering parser
   reports all of them in source order and still returns the healthy
   elements. *)
let test_recovery_multi_error () =
  let text =
    {|CREATE GRAPH TYPE G {
      (A { name STRING }),
      (B { age }),
      (C),
      (D { x INT y }),
      (:A)-[f]->(:C)
    }|}
  in
  let doc, errors = Parser.parse_with_recovery text in
  check_int "errors" 2 (List.length errors);
  let lines = List.map (fun e -> e.GP.Sdl.Source.at.GP.Sdl.Source.span_start.line) errors in
  check_bool "source order" true (lines = List.sort compare lines);
  (match doc with
  | [ gt ] ->
    let survivors =
      List.filter_map
        (function
          | Ast.Node_type n -> Some (List.hd n.Ast.n_labels)
          | Ast.Edge_type e -> Some e.Ast.e_label)
        gt.Ast.gt_elements
    in
    check_bool "healthy elements survive" true
      (List.mem "A" survivors && List.mem "C" survivors && List.mem "f" survivors)
  | _ -> Alcotest.fail "expected one graph type");
  (* the plain parse surfaces the first error *)
  match Parser.parse text with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e ->
    check_int "first error line" (List.hd (List.sort compare lines))
      e.GP.Sdl.Source.at.GP.Sdl.Source.span_start.line

let test_recovery_across_graph_types () =
  let text =
    "CREATE GRAPH TYPE A { (X) }\nCREATE GRAPH TYPE 123 {}\nCREATE GRAPH TYPE B { (Y) }"
  in
  let doc, errors = Parser.parse_with_recovery text in
  check_bool "one error" true (List.length errors >= 1);
  check_bool "both healthy graph types survive" true
    (List.map (fun gt -> gt.Ast.gt_name) doc = [ "A"; "B" ])

(* ---- lowering ---- *)

let test_lower_movies_equals_sdl () =
  let from_pgs = lower_exn movies_pgs in
  let from_sdl =
    match GP.Of_ast.parse movies_sdl with
    | Ok sch -> sch
    | Error msg -> Alcotest.failf "SDL does not parse: %s" msg
  in
  check_string "identical IR" (GP.To_sdl.to_string from_sdl) (GP.To_sdl.to_string from_pgs)

let test_lower_mapping () =
  let sch =
    lower_exn
      {|CREATE GRAPH TYPE G STRICT {
        (A OPEN { s STRING, OPTIONAL f FLOAT, tags STRING ARRAY, OPTIONAL more INT ARRAY, when DATE }),
        (B & Tagged),
        (:A)-[one]->(:B) OUT 0..1,
        (:A)-[must]->(:B) OUT 1..1 IN 1..*,
        (:A)-[many]->(:B) IN 0..1
      }|}
  in
  let field t f =
    match GP.Schema.field sch t f with
    | Some fd -> fd
    | None -> Alcotest.failf "missing field %s.%s" t f
  in
  let ty t f = GP.Wrapped.to_string (field t f).GP.Schema.fd_type in
  check_string "mandatory" "String!" (ty "A" "s");
  check_string "optional" "Float" (ty "A" "f");
  check_string "mandatory array" "[String!]!" (ty "A" "tags");
  check_string "optional array" "[Int!]" (ty "A" "more");
  check_string "custom scalar" "DATE!" (ty "A" "when");
  check_bool "custom scalar declared" true
    (GP.Schema.type_kind sch "DATE" = Some GP.Schema.Scalar);
  check_string "out 0..1" "B" (ty "A" "one");
  check_string "out 1..1" "B!" (ty "A" "must");
  check_string "out default" "[B!]" (ty "A" "many");
  let dirs t f = List.map (fun d -> d.GP.Schema.du_name) (field t f).GP.Schema.fd_directives in
  check_bool "@required on mandatory prop" true (dirs "A" "s" = [ "required" ]);
  check_bool "@required + @requiredForTarget" true
    (dirs "A" "must" = [ "required"; "requiredForTarget" ]);
  check_bool "@uniqueForTarget" true (dirs "A" "many" = [ "uniqueForTarget" ]);
  check_bool "open" true (GP.Schema.is_open sch "A");
  check_bool "closed" false (GP.Schema.is_open sch "B");
  check_bool "secondary label is an interface" true
    (GP.Schema.type_kind sch "Tagged" = Some GP.Schema.Interface);
  check_bool "B implements Tagged" true
    (match Sm.find_opt "B" sch.GP.Schema.objects with
    | Some ot -> ot.GP.Schema.ot_interfaces = [ "Tagged" ]
    | None -> false)

let test_loose_opens_all () =
  let sch = lower_exn "CREATE GRAPH TYPE G LOOSE { (A), (B) }" in
  check_bool "all open" true (GP.Schema.is_open sch "A" && GP.Schema.is_open sch "B")

let test_lower_errors () =
  check_bool "duplicate primary" true
    (List.mem "PGS002" (codes (errors_of "CREATE GRAPH TYPE G { (A), (A) }")));
  check_bool "unknown endpoint" true
    (List.mem "PGS002" (codes (errors_of "CREATE GRAPH TYPE G { (A), (:A)-[e]->(:Nope) }")));
  check_bool "secondary as endpoint" true
    (List.mem "PGS002"
       (codes (errors_of "CREATE GRAPH TYPE G { (A & S), (:S)-[e]->(:A) }")));
  check_bool "label as property type" true
    (List.mem "PGS002" (codes (errors_of "CREATE GRAPH TYPE G { (A), (B { x A }) }")));
  check_bool "syntax errors carry PGS001" true
    (codes (errors_of "CREATE GRAPH TYPE G { (A

") |> List.for_all (( = ) "PGS001"))

let test_lower_warnings () =
  (* warnings (PGS003) ride along with a successful lowering *)
  let warn text =
    match Lower.parse_full text with
    | Ok (_sch, warnings) -> codes warnings
    | Error diags ->
      Alcotest.failf "unexpected failure: %s"
        (String.concat "; " (List.map GP.Diag.to_text diags))
  in
  check_bool "edge OPEN is dropped with a warning" true
    (warn "CREATE GRAPH TYPE G { (A), (:A)-[e OPEN]->(:A) }" = [ "PGS003" ]);
  check_bool "cardinality 2..5 approximates" true
    (warn "CREATE GRAPH TYPE G { (A), (:A)-[e]->(:A) OUT 2..5 }" = [ "PGS003" ])

(* ---- the @open SS2 exemption, all engines ---- *)

let test_open_skips_ss2 () =
  let pgs = "CREATE GRAPH TYPE G { (A OPEN { s STRING }), (B { s STRING }) }" in
  let sch = lower_exn pgs in
  let g =
    let b = GP.Builder.create () in
    let _ =
      GP.Builder.node b "a" ~label:"A"
        ~props:[ ("s", GP.Value.String "x"); ("extra", GP.Value.Int 1) ]
        ()
    in
    let _ =
      GP.Builder.node b "b" ~label:"B"
        ~props:[ ("s", GP.Value.String "y"); ("extra", GP.Value.Int 2) ]
        ()
    in
    GP.Builder.graph b
  in
  let reports =
    List.map
      (fun engine ->
        List.map Vi.to_string (Val.check ~engine sch g).Val.violations)
      [ Val.Naive; Val.Linear; Val.Indexed; Val.Parallel; Val.Sharded ]
  in
  let incremental =
    List.map Vi.to_string (GP.Incremental.violations (GP.Incremental.create sch g))
  in
  List.iteri
    (fun i r -> check_bool (Printf.sprintf "engine %d agrees" i) true (r = List.hd reports))
    (List.tl reports @ [ incremental ]);
  (* exactly one SS2 violation: B's extra property; A is open *)
  let report = Val.check sch g in
  check_int "one violation" 1 (List.length report.Val.violations);
  check_bool "it is SS2 on the closed type" true
    (match report.Val.violations with
    | [ v ] -> v.Vi.rule = Vi.SS2
    | _ -> false)

(* ---- To_pgschema round-trip ---- *)

let prop_roundtrip_to_pgschema =
  QCheck2.Test.make ~name:"lower (To_pgschema (lower doc)) = lower doc" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xF00D |] in
      let sch = GP.Pgschema_gen.random_schema rng in
      let pgs = To_pgschema.to_string sch in
      match Lower.parse_full pgs with
      | Error diags ->
        QCheck2.Test.fail_reportf "export does not lower:@.%s@.%s" pgs
          (String.concat "\n" (List.map GP.Diag.to_text diags))
      | Ok (sch', _) ->
        let a = GP.To_sdl.to_string sch and b = GP.To_sdl.to_string sch' in
        if a = b then true
        else QCheck2.Test.fail_reportf "IR drift:@.%s@.----@.%s" a b)

let prop_printer_parses_back =
  QCheck2.Test.make ~name:"parse (print doc) = doc" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xCAFE |] in
      let doc = GP.Pgschema_gen.random_document rng in
      let text = Printer.document_to_string doc in
      match Parser.parse text with
      | Error e -> QCheck2.Test.fail_reportf "print does not parse: %s" e.GP.Sdl.Source.message
      | Ok doc' ->
        (* span-free comparison via the canonical rendering *)
        Printer.document_to_string doc' = text)

(* ---- cross-expressiveness: SDL vs PG-Schema, all six engines ---- *)

let prop_sdl_pgschema_reports_identical =
  QCheck2.Test.make
    ~name:"SDL and PG-Schema translations validate byte-identically (six engines)" ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xD1FF |] in
      let sch = GP.Pgschema_gen.random_schema rng in
      let sdl_text = GP.To_sdl.to_string sch in
      let pgs_text = To_pgschema.to_string sch in
      let from_sdl =
        match GP.Frontend.parse_full GP.Frontend.Sdl sdl_text with
        | Ok (s, _) -> s
        | Error ds ->
          QCheck2.Test.fail_reportf "SDL reparse failed:@.%s@.%s" sdl_text
            (String.concat "\n" (List.map GP.Diag.to_text ds))
      in
      let from_pgs =
        match GP.Frontend.parse_full GP.Frontend.Pgschema pgs_text with
        | Ok (s, _) -> s
        | Error ds ->
          QCheck2.Test.fail_reportf "PGS reparse failed:@.%s@.%s" pgs_text
            (String.concat "\n" (List.map GP.Diag.to_text ds))
      in
      let g = GP.Instance_gen.fuzz rng from_sdl ~max_nodes:10 in
      let report sch engine =
        List.map Vi.to_string (Val.check ~engine sch g).Val.violations
      in
      let incr sch =
        List.map Vi.to_string (GP.Incremental.violations (GP.Incremental.create sch g))
      in
      let all sch =
        List.map (report sch) [ Val.Naive; Val.Linear; Val.Indexed; Val.Parallel; Val.Sharded ]
        @ [ incr sch ]
      in
      let a = all from_sdl and b = all from_pgs in
      if a = b && List.for_all (( = ) (List.hd a)) a then true
      else
        QCheck2.Test.fail_reportf "reports differ between frontends/engines@.sdl:@.%s@.pgs:@.%s"
          sdl_text pgs_text)

(* ---- frontend selection ---- *)

let test_frontend_selection () =
  check_bool "pgs extension" true (GP.Frontend.infer ~path:"x/y/schema.pgs" = GP.Frontend.Pgschema);
  check_bool "graphql extension" true (GP.Frontend.infer ~path:"movies.graphql" = GP.Frontend.Sdl);
  check_bool "no extension" true (GP.Frontend.infer ~path:"schema" = GP.Frontend.Sdl);
  check_bool "of_string sdl" true (GP.Frontend.of_string "sdl" = Some GP.Frontend.Sdl);
  check_bool "of_string pgschema" true
    (GP.Frontend.of_string "PGSchema" = Some GP.Frontend.Pgschema);
  check_bool "of_string junk" true (GP.Frontend.of_string "cypher" = None);
  check_bool "explicit beats extension" true
    (GP.Frontend.select ~lang:GP.Frontend.Sdl ~path:"a.pgs" () = GP.Frontend.Sdl)

(* ---- Angles from PG-Schema ---- *)

let test_angles_of_pgschema () =
  match GP.Angles_of_pgschema.translate movies_pgs with
  | Error ds ->
    Alcotest.failf "translate failed: %s" (String.concat "; " (List.map GP.Diag.to_text ds))
  | Ok (angles, _dropped, _warnings) ->
    let from_sdl, _ = GP.Angles_of_graphql.translate (lower_exn movies_pgs) in
    check_bool "same Angles schema as translating the lowered IR" true (angles = from_sdl)

(* ---- of_ast regression: builtin scalars come from one list ---- *)

let test_builtin_scalar_names () =
  check_bool "five builtins" true
    (List.sort compare GP.Schema.builtin_scalar_names
    = [ "Boolean"; "Float"; "ID"; "Int"; "String" ]);
  (* every builtin is usable as a field type without a declaration, and
     never reported as undefined by the SDL frontend *)
  let sdl =
    "type T { a: Int b: Float c: String d: Boolean e: ID }"
  in
  match GP.Of_ast.parse sdl with
  | Ok sch ->
    check_bool "all five builtin scalars resolve" true
      (List.for_all
         (fun n -> GP.Schema.type_kind sch n = Some GP.Schema.Scalar)
         GP.Schema.builtin_scalar_names)
  | Error msg -> Alcotest.failf "builtins rejected: %s" msg

let suite =
  [
    Alcotest.test_case "lexer: token stream" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer: unterminated comment" `Quick test_lexer_unterminated_comment;
    Alcotest.test_case "parser: movies" `Quick test_parse_movies;
    Alcotest.test_case "parser: full feature surface" `Quick test_parse_features;
    Alcotest.test_case "parser: bad cardinality" `Quick test_parse_bad_cardinality;
    Alcotest.test_case "recovery: several errors, one run" `Quick test_recovery_multi_error;
    Alcotest.test_case "recovery: across graph types" `Quick test_recovery_across_graph_types;
    Alcotest.test_case "lower: movies = SDL twin" `Quick test_lower_movies_equals_sdl;
    Alcotest.test_case "lower: full mapping table" `Quick test_lower_mapping;
    Alcotest.test_case "lower: LOOSE opens every type" `Quick test_loose_opens_all;
    Alcotest.test_case "lower: PGS002 errors" `Quick test_lower_errors;
    Alcotest.test_case "lower: PGS003 warnings" `Quick test_lower_warnings;
    Alcotest.test_case "@open exempts SS2 in every engine" `Quick test_open_skips_ss2;
    QCheck_alcotest.to_alcotest prop_printer_parses_back;
    QCheck_alcotest.to_alcotest prop_roundtrip_to_pgschema;
    QCheck_alcotest.to_alcotest prop_sdl_pgschema_reports_identical;
    Alcotest.test_case "frontend selection" `Quick test_frontend_selection;
    Alcotest.test_case "Angles from PG-Schema" `Quick test_angles_of_pgschema;
    Alcotest.test_case "builtin scalar list (of_ast regression)" `Quick test_builtin_scalar_names;
  ]
