(* gpgs — command-line interface to the graphql_pg library.

   Subcommands:
     parse     parse + lint an SDL schema, optionally pretty-print it
     check     consistency + per-object-type satisfiability report
     validate  validate a PGF graph against a schema
     batch     validate many PGF graphs against one compiled schema plan,
               continue-on-error, under the supervisor
     snapshot  freeze a graph into a binary snapshot (build) or describe
               one (info); validate/batch reopen them via --snapshot
     sat       satisfiability of one object type, with optional witness
     reduce    Theorem 2: DIMACS CNF -> reduction schema (SDL)
     extend    Section 3.6: extend a PG schema into a GraphQL API schema
     gen       generate the social-network workload as PGF
     stats     describe a PGF graph

   Every subcommand takes --format text|json.  Output streams follow one
   policy:

     text  results and artifacts on stdout, diagnostics on stderr
     json  one machine-readable report document on stdout (for the
           report commands parse/check/validate/sat/diff; artifact
           commands keep their artifact on stdout and report failures
           as a JSON document instead of text)

   Every diagnostic carries a stable code from Graphql_pg.Diag_registry
   (SDL001 syntax, LINT0xx lint, SCH0xx build/consistency, WS*/DS*/SS*
   validation, SAT0xx satisfiability, DIFF0xx evolution, IO0xx input).

   Exit codes (uniform across subcommands, computed by
   Graphql_pg.Diag.Exit.classify from the diagnostics):
     0  clean — the requested check passed / the artifact was produced
     1  findings — violations, lint errors, unsatisfiable types,
        breaking changes, unrepairable graph
     2  usage or input error — bad command line, unreadable file,
        syntax error, inconsistent schema, invalid flag value
     3  internal error or budget exhausted — unexpected exception, or a
        --deadline-ms / --max-violations budget ran out before the
        answer was complete *)

open Cmdliner
module GP = Graphql_pg

let exit_input = GP.Diag.Exit.(code Input_error)
let exit_budget = GP.Diag.Exit.(code Budget)

type fmt = Text | Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let emit_json ~command ?summary ?cls diags =
  print_endline (GP.Diag_report.to_string (GP.Diag_report.envelope ~command ?summary ?cls diags))

(* End a report command: in json mode print the envelope, then exit with
   the code the diagnostics classify to (0 needs no explicit exit). *)
let finish ~fmt ~command ?summary ?cls diags =
  let cls = match cls with Some c -> c | None -> GP.Diag.Exit.classify diags in
  (match fmt with
  | Text -> ()
  | Json -> emit_json ~command ?summary ~cls diags);
  let code = GP.Diag.Exit.code cls in
  if code <> 0 then exit code

(* Abort on an unusable input: text mode keeps the historical
   one-message-per-line stderr rendering, json mode reports the same
   diagnostics as a document on stdout. *)
let die ~fmt ~command ?(cls = GP.Diag.Exit.Input_error) ~text diags =
  (match fmt with
  | Text -> prerr_endline text
  | Json -> emit_json ~command ~cls diags);
  exit (GP.Diag.Exit.code cls)

(* The schema language defaults to the file extension (.pgs = PG-Schema,
   anything else SDL); --schema-lang overrides. *)
let load_schema ?lang ~lenient path =
  let text = read_file path in
  let lang = GP.Frontend.select ?lang ~path () in
  match GP.Frontend.parse_full ~consistency:(not lenient) lang text with
  | Ok (sch, warnings) -> Ok (sch, warnings)
  | Error diags -> Error (path, diags)

let load_graph path =
  match GP.Pgf.load path with
  | Ok g -> Ok g
  | Error e ->
    Error (path, [ GP.Diag.error ~code:"IO001" (Format.asprintf "%a" GP.Pgf.pp_error e) ])

(* Fault-tolerant ingestion (--stream / --quarantine / --max-input-errors):
   malformed records become IO002/IO003 diagnostics and a possibly-partial
   graph instead of a hard failure. *)
let load_graph_streaming ?quarantine ?max_input_errors path =
  match GP.Stream.load_pgf ?max_errors:max_input_errors ?quarantine path with
  | Ok o -> Ok (o, GP.Diag_report.ingest_diagnostics ~file:path o)
  | Error e ->
    Error (path, [ GP.Diag.error ~code:"IO001" (Format.asprintf "%a" GP.Pgf.pp_error e) ])

(* Binary snapshot input (--snapshot / gpgs snapshot): IO004/IO005
   failures (bad magic, version, layout, checksum) carry their stable
   code straight from Snapshot_io. *)
let load_snapshot st path =
  match GP.Snapshot_io.load st path with
  | Ok snap -> Ok snap
  | Error e ->
    Error (path, [ GP.Diag.error ~code:e.GP.Snapshot_io.code e.GP.Snapshot_io.message ])

let or_die ~fmt ~command = function
  | Ok x -> x
  | Error (path, diags) ->
    let text =
      Printf.sprintf "%s: %s" path
        (String.concat "\n" (List.map GP.Diag.to_text diags))
    in
    die ~fmt ~command ~text diags

(* ---- common arguments ---- *)

let schema_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"SCHEMA"
        ~doc:"Schema file: GraphQL SDL, or PG-Schema ($(b,.pgs) / $(b,--schema-lang pgschema)).")

let lang_arg =
  Arg.(
    value
    & opt (some (enum [ ("sdl", GP.Frontend.Sdl); ("pgschema", GP.Frontend.Pgschema) ])) None
    & info [ "schema-lang" ] ~docv:"LANG"
        ~doc:
          "Schema language: $(b,sdl) (GraphQL SDL) or $(b,pgschema) (the PG-Schema \
           fragment).  Default: inferred from the schema file extension ($(b,.pgs) means \
           pgschema, anything else sdl).")

let lenient_arg =
  Arg.(
    value & flag
    & info [ "lenient" ]
        ~doc:"Skip the consistency check of Definition 4.5 (needed for the paper's Example 6.1).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,text) (human-readable; diagnostics on stderr) or $(b,json) \
           (one machine-readable report document on stdout, with stable diagnostic codes).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget in milliseconds; on exhaustion partial results are \
           reported and the exit code is 3.")

let max_violations_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-violations" ] ~docv:"N"
        ~doc:"Stop validating after N violations have been found (exit code 3).")

let governor ?deadline_ms ?max_violations () =
  GP.Governor.make ?deadline_ms ?max_violations ()

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Ingest the graph with the fault-tolerant streaming loader: malformed records \
           are skipped (reported as $(b,IO002) diagnostics) and validation runs on the \
           partial graph.  Implied by $(b,--quarantine) and $(b,--max-input-errors).")

let quarantine_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "quarantine" ] ~docv:"FILE"
        ~doc:
          "Write the raw text of every skipped record to $(docv) (created lazily on the \
           first fault).  Implies $(b,--stream).")

let max_input_errors_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-input-errors" ] ~docv:"N"
        ~doc:
          "Error budget for streaming ingestion: tolerate N malformed records, then stop \
           reading early ($(b,IO003), exit code per the Input class).  Default: unlimited.  \
           Implies $(b,--stream).")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Run validation under the supervisor: crashes become $(b,VAL002) diagnostics \
           and transient failures are retried up to N times with deterministic backoff.")

let snapshot_arg =
  Arg.(
    value & flag
    & info [ "snapshot" ]
        ~doc:
          "Treat the graph input as a binary snapshot written by $(b,gpgs snapshot build) \
           and reopen it with mmap instead of reparsing PGF text.  The diagnostic report \
           is byte-identical to the reparse path.  Incompatible with the streaming \
           ingestion flags and with $(b,--engine naive).")

(* ---- parse ---- *)

let parse_cmd =
  let run_pgschema schema_path pretty fmt =
    let text = read_file schema_path in
    match GP.Pgschema.Parser.parse_with_recovery text with
    | _, (_ :: _ as errors) ->
      let diags = List.map GP.Pgschema.Lower.syntax_diagnostic errors in
      (match fmt with
      | Text -> List.iter (fun e -> prerr_endline (GP.Sdl.Source.error_to_string e)) errors
      | Json -> ());
      finish ~fmt ~command:"parse" diags
    | doc, [] ->
      (match fmt with
      | Text -> if pretty then print_string (GP.Pgschema.Printer.document_to_string doc)
      | Json -> ());
      finish ~fmt ~command:"parse"
        ~summary:[ ("definitions", GP.Json.Int (List.length doc)) ]
        []
  in
  let run schema_path lang pretty fmt =
    match GP.Frontend.select ?lang ~path:schema_path () with
    | GP.Frontend.Pgschema -> run_pgschema schema_path pretty fmt
    | GP.Frontend.Sdl ->
    let text = read_file schema_path in
    match GP.Sdl.Parser.parse_with_recovery text with
    | _, (_ :: _ as errors) ->
      (* every syntax error in the document, one per line, in source order *)
      let diags = List.map GP.Sdl.Source.to_diagnostic errors in
      (match fmt with
      | Text -> List.iter (fun e -> prerr_endline (GP.Sdl.Source.error_to_string e)) errors
      | Json -> ());
      finish ~fmt ~command:"parse" diags
    | doc, [] ->
      let issues = GP.Sdl.Lint.check doc in
      let diags = List.map GP.Sdl.Lint.to_diagnostic issues in
      (match fmt with
      | Text ->
        List.iter (fun i -> Format.eprintf "%a@." GP.Sdl.Lint.pp_issue i) issues;
        if pretty then print_string (GP.Sdl.Printer.document_to_string doc)
      | Json -> ());
      finish ~fmt ~command:"parse"
        ~summary:[ ("definitions", GP.Json.Int (List.length doc)) ]
        diags
  in
  let pretty =
    Arg.(value & flag & info [ "print"; "p" ] ~doc:"Pretty-print the parsed document (text mode only).")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse and lint a schema document (SDL or PG-Schema).")
    Term.(const run $ schema_arg $ lang_arg $ pretty $ format_arg)

(* ---- check ---- *)

let check_cmd =
  let run schema_path lang lenient deadline_ms fmt =
    let sch, warnings = or_die ~fmt ~command:"check" (load_schema ?lang ~lenient schema_path) in
    let issues = GP.Consistency.check sch in
    let gov = governor ?deadline_ms () in
    let reports = GP.Satisfiability.check_all ~gov sch in
    let diags =
      warnings
      @ List.map GP.Consistency.to_diagnostic issues
      @ List.concat_map (fun (ot, r) -> GP.Satisfiability.to_diagnostics ot r) reports
    in
    (match fmt with
    | Text ->
      Format.printf "%a@." GP.Schema.pp_summary sch;
      if issues = [] then print_endline "consistency: ok (Definition 4.5)"
      else begin
        Format.printf "consistency: %d issue(s)@." (List.length issues);
        (* stream policy: the issue lines are diagnostics -> stderr *)
        List.iter (fun i -> Format.eprintf "  %a@." GP.Consistency.pp_issue i) issues
      end;
      List.iter
        (fun (ot, report) ->
          Format.printf "satisfiability of %s: %a@." ot GP.Satisfiability.pp_report report)
        reports
    | Json -> ());
    finish ~fmt ~command:"check"
      ~summary:(GP.Diag_report.check_summary sch issues reports)
      diags
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check schema consistency and the satisfiability of every object type.")
    Term.(const run $ schema_arg $ lang_arg $ lenient_arg $ deadline_arg $ format_arg)

(* ---- validate ---- *)

let engine_conv =
  Arg.enum
    [
      ("indexed", GP.Validate.Indexed);
      ("linear", GP.Validate.Linear);
      ("naive", GP.Validate.Naive);
      ("parallel", GP.Validate.Parallel);
      ("sharded", GP.Validate.Sharded);
    ]

let mode_conv =
  Arg.enum
    [
      ("strong", GP.Validate.Strong);
      ("weak", GP.Validate.Weak);
      ("directives", GP.Validate.Directives);
    ]

(* --domains 0 used to be clamped to 1 deep in the parallel engine; a
   nonsensical count is a usage error and gets a CLI001 up front, same
   as every other bad flag value.  --shards only means something to the
   sharded engine. *)
let check_counts ~usage ~engine ~domains ~shards =
  (match domains with
  | Some d when d < 1 -> usage (Printf.sprintf "--domains must be at least 1 (got %d)" d)
  | _ -> ());
  (match shards with
  | Some s when s < 1 -> usage (Printf.sprintf "--shards must be at least 1 (got %d)" s)
  | _ -> ());
  if shards <> None && engine <> GP.Validate.Sharded then
    usage "--shards applies to --engine sharded only"

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shard count for the sharded engine (default: the domain count).  With \
           $(b,--snapshot) the sharded engine streams the file one shard at a time, so \
           peak property memory is bounded by the largest shard plus the cross-shard \
           frontier.")

let validate_cmd =
  let run schema_path lang graph_path lenient engine mode domains shards deadline_ms
      max_violations stream quarantine max_input_errors retries snapshot fmt =
    let usage msg =
      die ~fmt ~command:"validate" ~text:msg [ GP.Diag.error ~code:"CLI001" msg ]
    in
    check_counts ~usage ~engine ~domains ~shards;
    let sch, _ = or_die ~fmt ~command:"validate" (load_schema ?lang ~lenient schema_path) in
    let gov = governor ?deadline_ms ?max_violations () in
    let check, ingest_diags, ingest_summary =
      if snapshot then begin
        if stream || quarantine <> None || max_input_errors <> None then
          usage
            "--snapshot input is already frozen; the streaming ingestion flags apply to \
             PGF text only";
        if engine = GP.Validate.Naive then
          usage
            "--engine naive validates the source graph text; use linear, indexed, \
             parallel, or sharded with --snapshot";
        let plan = GP.Validate.compile sch in
        if engine = GP.Validate.Sharded then begin
          (* the out-of-core path: int columns mmapped, properties read
             one shard at a time by the streaming pipeline *)
          let md =
            match GP.Snapshot_io.open_mapped (GP.Plan.symtab plan) graph_path with
            | Ok md -> md
            | Error e ->
              die ~fmt ~command:"validate"
                ~text:(graph_path ^ ": " ^ e.GP.Snapshot_io.code ^ ": " ^ e.GP.Snapshot_io.message)
                [ GP.Diag.error ~code:e.GP.Snapshot_io.code e.GP.Snapshot_io.message ]
          in
          ( (fun () ->
              match GP.Validate.check_mapped ~mode ?shards ~gov plan md with
              | Ok report -> report
              | Error e ->
                die ~fmt ~command:"validate"
                  ~text:(graph_path ^ ": " ^ e.GP.Snapshot_io.code ^ ": " ^ e.GP.Snapshot_io.message)
                  [ GP.Diag.error ~code:e.GP.Snapshot_io.code e.GP.Snapshot_io.message ]),
            [], [] )
        end
        else
          let snap =
            or_die ~fmt ~command:"validate" (load_snapshot (GP.Plan.symtab plan) graph_path)
          in
          ( (fun () -> GP.Validate.check_snapshot ~engine ~mode ?domains ~gov plan snap),
            [], [] )
      end
      else begin
        let streaming = stream || quarantine <> None || max_input_errors <> None in
        let g, ingest_diags, ingest_summary =
          if streaming then begin
            let outcome, diags =
              or_die ~fmt ~command:"validate"
                (load_graph_streaming ?quarantine ?max_input_errors graph_path)
            in
            (outcome.GP.Stream.graph, diags, GP.Diag_report.ingest_summary outcome)
          end
          else (or_die ~fmt ~command:"validate" (load_graph graph_path), [], [])
        in
        ((fun () -> GP.Validate.check ~engine ~mode ?domains ?shards ~gov sch g),
         ingest_diags, ingest_summary)
      end
    in
    let outcome =
      if retries = 0 then GP.Supervisor.Done (check (), 1)
      else GP.Supervisor.supervise ~policy:(GP.Supervisor.policy ~retries ()) check
    in
    match outcome with
    | GP.Supervisor.Done (report, _) ->
      (match fmt with
      | Text ->
        List.iter (fun d -> prerr_endline (GP.Diag.to_text d)) ingest_diags;
        Format.printf "%a@." GP.Validate.pp_report report
      | Json -> ());
      finish ~fmt ~command:"validate"
        ~summary:(GP.Diag_report.validate_summary report @ ingest_summary)
        (ingest_diags @ GP.Validate.diagnostics report)
    | GP.Supervisor.Crashed crash ->
      let crash_diag = GP.Supervisor.crash_diagnostic ~subject:graph_path crash in
      let diags = ingest_diags @ [ crash_diag ] in
      (match fmt with
      | Text -> List.iter (fun d -> prerr_endline (GP.Diag.to_text d)) diags
      | Json -> ());
      finish ~fmt ~command:"validate" ~summary:ingest_summary diags
  in
  let graph_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"GRAPH" ~doc:"PGF graph file (or a binary snapshot with $(b,--snapshot)).")
  in
  let engine =
    Arg.(
      value
      & opt engine_conv GP.Validate.Indexed
      & info [ "engine" ] ~doc:"naive, linear, indexed, parallel, or sharded.")
  in
  let mode =
    Arg.(value & opt mode_conv GP.Validate.Strong & info [ "mode" ] ~doc:"strong, weak, or directives.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Domains for the parallel and sharded engines (default: all cores).")
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate a Property Graph against a schema (Section 5).")
    Term.(
      const run $ schema_arg $ lang_arg $ graph_arg $ lenient_arg $ engine $ mode $ domains
      $ shards_arg $ deadline_arg $ max_violations_arg $ stream_arg $ quarantine_arg
      $ max_input_errors_arg $ retries_arg $ snapshot_arg $ format_arg)

(* ---- batch ---- *)

let batch_cmd =
  let run schema_path lang graph_paths lenient engine mode domains shards deadline_ms
      max_violations stream max_input_errors retries snapshot fmt =
    let usage msg = die ~fmt ~command:"batch" ~text:msg [ GP.Diag.error ~code:"CLI001" msg ] in
    check_counts ~usage ~engine ~domains ~shards;
    if snapshot && (stream || max_input_errors <> None) then
      usage
        "--snapshot input is already frozen; the streaming ingestion flags apply to PGF \
         text only";
    if snapshot && engine = GP.Validate.Naive then
      usage
        "--engine naive validates the source graph text; use linear, indexed, parallel, \
         or sharded with --snapshot";
    let sch, _ = or_die ~fmt ~command:"batch" (load_schema ?lang ~lenient schema_path) in
    (* one compiled plan for the whole batch; jobs run sequentially (plan
       reuse is sequential-only — within a job the parallel engine may
       still shard across domains) *)
    let plan = GP.Validate.compile sch in
    let policy = GP.Supervisor.policy ~retries () in
    let streaming = stream || max_input_errors <> None in
    let finish_job path ingest_diags ingest_complete check =
      (* a fresh budget per job: the deadline is relative to the run's
         start, so each job gets the full allowance *)
      match GP.Supervisor.supervise ~policy check with
      | GP.Supervisor.Done (report, attempts) ->
        let status =
          if report.GP.Validate.complete && ingest_complete then GP.Supervisor.Completed
          else GP.Supervisor.Partial
        in
        {
          GP.Supervisor.job = path;
          job_status = status;
          attempts;
          diags = ingest_diags @ GP.Validate.diagnostics report;
        }
      | GP.Supervisor.Crashed crash ->
        {
          GP.Supervisor.job = path;
          job_status = GP.Supervisor.Crashed_job;
          attempts = crash.GP.Supervisor.crash_attempts;
          diags = ingest_diags @ [ GP.Supervisor.crash_diagnostic ~subject:path crash ];
        }
    in
    let unreadable path diags =
      { GP.Supervisor.job = path; job_status = GP.Supervisor.Unreadable; attempts = 0; diags }
    in
    let diag_of_io (e : GP.Snapshot_io.error) = GP.Diag.error ~code:e.code e.message in
    let run_job path =
      if snapshot && engine = GP.Validate.Sharded then
        (* out-of-core per job: properties stream one shard at a time;
           the mapped descriptor closes before the next job opens *)
        match GP.Snapshot_io.open_mapped (GP.Plan.symtab plan) path with
        | Error e -> unreadable path [ diag_of_io e ]
        | Ok md ->
          let gov = governor ?deadline_ms ?max_violations () in
          let result = GP.Validate.check_mapped ~mode ?shards ~gov plan md in
          GP.Snapshot_io.close_mapped md;
          (match result with
          | Error e -> unreadable path [ diag_of_io e ]
          | Ok report ->
            let status =
              if report.GP.Validate.complete then GP.Supervisor.Completed
              else GP.Supervisor.Partial
            in
            {
              GP.Supervisor.job = path;
              job_status = status;
              attempts = 1;
              diags = GP.Validate.diagnostics report;
            })
      else if snapshot then
        match load_snapshot (GP.Plan.symtab plan) path with
        | Error (_, diags) -> unreadable path diags
        | Ok snap ->
          let gov = governor ?deadline_ms ?max_violations () in
          finish_job path [] true (fun () ->
              GP.Validate.check_snapshot ~engine ~mode ?domains ~gov plan snap)
      else
        let ingested =
          if streaming then
            match load_graph_streaming ?max_input_errors path with
            | Ok (o, diags) -> Ok (o.GP.Stream.graph, diags, o.GP.Stream.complete)
            | Error (_, diags) -> Error diags
          else
            match load_graph path with
            | Ok g -> Ok (g, [], true)
            | Error (_, diags) -> Error diags
        in
        match ingested with
        | Error diags -> unreadable path diags
        | Ok (g, ingest_diags, ingest_complete) ->
          let gov = governor ?deadline_ms ?max_violations () in
          finish_job path ingest_diags ingest_complete (fun () ->
              GP.Validate.check_compiled ~engine ~mode ?domains ?shards ~gov plan g)
    in
    let batch = GP.Supervisor.make_batch (List.map run_job graph_paths) in
    let diags = GP.Supervisor.batch_diagnostics batch in
    (match fmt with
    | Text ->
      List.iter
        (fun (j : GP.Supervisor.job_report) ->
          Printf.printf "%s: %s (%d diagnostic(s))\n" j.job
            (GP.Supervisor.status_name j.job_status)
            (List.length j.diags))
        batch.GP.Supervisor.jobs;
      Format.printf "%a@." GP.Supervisor.pp_batch batch;
      List.iter (fun d -> prerr_endline (GP.Diag.to_text d)) diags
    | Json -> ());
    finish ~fmt ~command:"batch" ~summary:(GP.Diag_report.batch_summary batch) diags
  in
  let graphs_arg =
    Arg.(
      non_empty
      & pos_right 0 file []
      & info [] ~docv:"GRAPH" ~doc:"PGF graph files (one validation job each).")
  in
  let engine =
    Arg.(
      value
      & opt engine_conv GP.Validate.Indexed
      & info [ "engine" ] ~doc:"naive, linear, indexed, parallel, or sharded.")
  in
  let mode =
    Arg.(value & opt mode_conv GP.Validate.Strong & info [ "mode" ] ~doc:"strong, weak, or directives.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Domains for the parallel and sharded engines (default: all cores).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Validate many graphs against one schema, compiled once.  Jobs run under the \
          supervisor: a broken input, an exhausted budget, or a crashed engine costs \
          that job only; the run continues and one report covers every job, with the \
          exit code composed from all diagnostics (Input > Budget > Findings > Clean).")
    Term.(
      const run $ schema_arg $ lang_arg $ graphs_arg $ lenient_arg $ engine $ mode $ domains
      $ shards_arg $ deadline_arg $ max_violations_arg $ stream_arg $ max_input_errors_arg
      $ retries_arg $ snapshot_arg $ format_arg)

(* ---- sat ---- *)

let sat_cmd =
  let run schema_path type_name lenient witness_out deadline_ms fmt =
    let sch, _ = or_die ~fmt ~command:"sat" (load_schema ~lenient schema_path) in
    let gov = governor ?deadline_ms () in
    let report = GP.Satisfiability.check ~gov sch type_name in
    let witness_file =
      match witness_out, report.GP.Satisfiability.witness with
      | Some path, Some g ->
        GP.Pgf.save path g;
        Some path
      | _ -> None
    in
    (match fmt with
    | Text ->
      Format.printf "%a@." GP.Satisfiability.pp_report report;
      (match witness_out, witness_file with
      | Some _, Some path -> Format.printf "witness written to %s@." path
      | Some _, None -> print_endline "no witness available"
      | None, _ -> ())
    | Json -> ());
    let summary =
      GP.Diag_report.sat_summary report
      @ (match witness_file with
        | Some path -> [ ("witness_file", GP.Json.String path) ]
        | None -> [])
    in
    finish ~fmt ~command:"sat" ~summary (GP.Satisfiability.to_diagnostics type_name report)
  in
  let type_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TYPE" ~doc:"Object type name.")
  in
  let witness =
    Arg.(value & opt (some string) None & info [ "witness" ] ~docv:"FILE" ~doc:"Write a witness graph as PGF.")
  in
  Cmd.v
    (Cmd.info "sat" ~doc:"Decide object-type satisfiability (Section 6.2).")
    Term.(const run $ schema_arg $ type_arg $ lenient_arg $ witness $ deadline_arg $ format_arg)

(* ---- reduce ---- *)

let reduce_cmd =
  let run cnf_path fmt =
    let text = read_file cnf_path in
    match GP.Cnf.parse_dimacs text with
    | Error msg ->
      die ~fmt ~command:"reduce" ~text:msg [ GP.Diag.error ~code:"IO001" msg ]
    | Ok f -> print_string (GP.Reduction.to_sdl f)
  in
  let cnf_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CNF" ~doc:"DIMACS CNF file.")
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Emit the Theorem 2 reduction schema of a CNF formula as SDL.")
    Term.(const run $ cnf_arg $ format_arg)

(* ---- extend ---- *)

let extend_cmd =
  let run schema_path lenient fmt =
    let sch, _ = or_die ~fmt ~command:"extend" (load_schema ~lenient schema_path) in
    match GP.Api_extension.extend_to_string sch with
    | Ok text -> print_string text
    | Error msg ->
      die ~fmt ~command:"extend" ~text:msg [ GP.Diag.error ~code:"SCH003" msg ]
  in
  Cmd.v
    (Cmd.info "extend"
       ~doc:"Extend a Property Graph schema into a GraphQL API schema (Section 3.6).")
    Term.(const run $ schema_arg $ lenient_arg $ format_arg)

(* ---- doc ---- *)

let doc_cmd =
  let run schema_path lenient fmt =
    let sch, _ = or_die ~fmt ~command:"doc" (load_schema ~lenient schema_path) in
    print_string (GP.Schema_doc.to_markdown sch)
  in
  Cmd.v
    (Cmd.info "doc" ~doc:"Render a schema as Markdown documentation.")
    Term.(const run $ schema_arg $ lenient_arg $ format_arg)

(* ---- cypher ---- *)

let cypher_cmd =
  let run schema_path lenient fmt =
    let sch, _ = or_die ~fmt ~command:"cypher" (load_schema ~lenient schema_path) in
    print_string (GP.Neo4j_ddl.to_script sch)
  in
  Cmd.v
    (Cmd.info "cypher"
       ~doc:"Export the Cypher 3.5 constraint DDL fragment of a schema (Section 2.1).")
    Term.(const run $ schema_arg $ lenient_arg $ format_arg)

(* ---- gen ---- *)

let gen_cmd =
  let run persons seed output =
    let g = GP.Social.generate ~seed ~persons () in
    (match output with
    | Some path ->
      GP.Pgf.save path g;
      Format.printf "%a written to %s@." GP.Property_graph.pp g path
    | None -> print_string (GP.Pgf.print g))
  in
  let persons =
    Arg.(value & opt int 100 & info [ "persons" ] ~doc:"Number of Person nodes.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output PGF file.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate the social-network workload as PGF.")
    Term.(const run $ persons $ seed $ output)

(* ---- repair ---- *)

let repair_cmd =
  let run schema_path graph_path lenient output fmt =
    let sch, _ = or_die ~fmt ~command:"repair" (load_schema ~lenient schema_path) in
    let g = or_die ~fmt ~command:"repair" (load_graph graph_path) in
    if GP.conforms sch g then begin
      print_endline "graph already strongly satisfies the schema";
      Option.iter (fun path -> GP.Pgf.save path g) output
    end
    else
      match GP.Model_search.repair sch g with
      | Some repaired ->
        Format.printf "repaired: %a -> %a@." GP.Property_graph.pp g GP.Property_graph.pp
          repaired;
        (match output with
        | Some path ->
          GP.Pgf.save path repaired;
          Format.printf "written to %s@." path
        | None -> print_string (GP.Pgf.print repaired))
      | None ->
        let msg = "could not repair the graph within bounds" in
        die ~fmt ~command:"repair" ~cls:GP.Diag.Exit.Findings ~text:msg
          [ GP.Diag.error ~code:"REP001" msg ]
  in
  let graph_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"GRAPH" ~doc:"PGF graph file.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output PGF file.")
  in
  Cmd.v
    (Cmd.info "repair" ~doc:"Repair a graph into strong satisfaction of a schema.")
    Term.(const run $ schema_arg $ graph_arg $ lenient_arg $ output $ format_arg)

(* ---- diff ---- *)

let diff_cmd =
  let run old_path new_path lenient fmt =
    let old_schema, _ = or_die ~fmt ~command:"diff" (load_schema ~lenient old_path) in
    let new_schema, _ = or_die ~fmt ~command:"diff" (load_schema ~lenient new_path) in
    let changes = GP.Schema_diff.diff old_schema new_schema in
    (match fmt with
    | Text ->
      if changes = [] then print_endline "schemas are identical (validation-wise)"
      else List.iter (fun c -> Format.printf "%a@." GP.Schema_diff.pp_change c) changes
    | Json -> ());
    finish ~fmt ~command:"diff"
      ~summary:(GP.Diag_report.diff_summary changes)
      (List.map GP.Schema_diff.to_diagnostic changes)
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"New SDL schema file.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Diff two schemas; exit 1 if the evolution can break existing data.")
    Term.(const run $ schema_arg $ new_arg $ lenient_arg $ format_arg)

(* ---- query ---- *)

let query_cmd =
  let run schema_path graph_path lenient query_text query_file operation variables fmt =
    let sch, _ = or_die ~fmt ~command:"query" (load_schema ~lenient schema_path) in
    let g = or_die ~fmt ~command:"query" (load_graph graph_path) in
    let usage msg = die ~fmt ~command:"query" ~text:msg [ GP.Diag.error ~code:"CLI001" msg ] in
    let text =
      match query_text, query_file with
      | Some q, _ -> q
      | None, Some path -> read_file path
      | None, None -> usage "provide a query (positional) or --file"
    in
    let variables =
      match variables with
      | None -> []
      | Some json_text -> (
        match GP.Json.of_string json_text with
        | Ok (GP.Json.Assoc fields) -> fields
        | Ok _ -> usage "--variables must be a JSON object"
        | Error e -> usage ("--variables: " ^ e))
    in
    match GP.query ?operation ~variables sch g text with
    | Ok data -> print_endline (GP.Json.to_string ~indent:true data)
    | Error msg -> die ~fmt ~command:"query" ~text:msg [ GP.Diag.error ~code:"QRY001" msg ]
  in
  let graph_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"GRAPH" ~doc:"PGF graph file.")
  in
  let query_text =
    Arg.(value & pos 2 (some string) None & info [] ~docv:"QUERY" ~doc:"GraphQL query text.")
  in
  let query_file =
    Arg.(value & opt (some file) None & info [ "file"; "f" ] ~docv:"FILE" ~doc:"Read the query from a file.")
  in
  let operation =
    Arg.(value & opt (some string) None & info [ "operation" ] ~docv:"NAME" ~doc:"Operation to run.")
  in
  let variables =
    Arg.(value & opt (some string) None & info [ "variables" ] ~docv:"JSON" ~doc:"Variable values as a JSON object.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Execute a GraphQL query against a Property Graph (Section 3.6 conventions).")
    Term.(const run $ schema_arg $ graph_arg $ lenient_arg $ query_text $ query_file $ operation $ variables $ format_arg)

(* ---- export ---- *)

let export_cmd =
  let run graph_path output fmt =
    let g = or_die ~fmt ~command:"export" (load_graph graph_path) in
    GP.Graphml.save output g;
    Format.printf "%a written to %s@." GP.Property_graph.pp g output
  in
  let graph_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"PGF graph file.")
  in
  let output =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"GraphML output file.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a PGF graph as GraphML (Gephi/yEd/Cytoscape).")
    Term.(const run $ graph_arg $ output $ format_arg)

(* ---- snapshot ---- *)

let snapshot_build_cmd =
  let run graph_path output stream quarantine max_input_errors fmt =
    let streaming = stream || quarantine <> None || max_input_errors <> None in
    let g, ingest_diags =
      if streaming then begin
        let outcome, diags =
          or_die ~fmt ~command:"snapshot"
            (load_graph_streaming ?quarantine ?max_input_errors graph_path)
        in
        (outcome.GP.Stream.graph, diags)
      end
      else (or_die ~fmt ~command:"snapshot" (load_graph graph_path), [])
    in
    (* a fresh symbol table: the file stores its own symbols, and the
       loader remaps them into whatever plan it is validated against *)
    let st = GP.Symtab.create () in
    let written =
      match GP.Snapshot.build st g with
      | snap -> GP.Snapshot_io.write st snap output
      | exception GP.Snapshot.Build_error msg ->
        Error { GP.Snapshot_io.code = "IO001"; message = graph_path ^ ": " ^ msg }
    in
    match written with
    | Error e ->
      die ~fmt ~command:"snapshot" ~text:(e.GP.Snapshot_io.code ^ ": " ^ e.GP.Snapshot_io.message)
        [ GP.Diag.error ~code:e.GP.Snapshot_io.code e.GP.Snapshot_io.message ]
    | Ok () ->
      (match fmt with
      | Text ->
        List.iter (fun d -> prerr_endline (GP.Diag.to_text d)) ingest_diags;
        Format.printf "%a frozen to %s@." GP.Property_graph.pp g output
      | Json -> ());
      finish ~fmt ~command:"snapshot"
        ~summary:
          [
            ("snapshot_file", GP.Json.String output);
            ("nodes", GP.Json.Int (GP.Property_graph.node_count g));
            ("edges", GP.Json.Int (GP.Property_graph.edge_count g));
          ]
        ingest_diags
  in
  let graph_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"PGF graph file.")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output snapshot file.")
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "Freeze a PGF graph into a binary snapshot (CSR adjacency, interned symbols, \
          checksummed) that $(b,validate --snapshot) reopens with mmap instead of \
          reparsing.")
    Term.(
      const run $ graph_arg $ output $ stream_arg $ quarantine_arg $ max_input_errors_arg
      $ format_arg)

let snapshot_info_cmd =
  let run path fmt =
    match GP.Snapshot_io.info path with
    | Error e ->
      die ~fmt ~command:"snapshot" ~text:(e.GP.Snapshot_io.code ^ ": " ^ e.GP.Snapshot_io.message)
        [ GP.Diag.error ~code:e.GP.Snapshot_io.code e.GP.Snapshot_io.message ]
    | Ok i ->
      (match fmt with
      | Text ->
        Format.printf "%s: snapshot format v%d, %d node(s), %d edge(s), %d symbol(s), %d bytes@."
          path i.GP.Snapshot_io.version i.GP.Snapshot_io.nodes i.GP.Snapshot_io.edges
          i.GP.Snapshot_io.symbols i.GP.Snapshot_io.bytes
      | Json -> ());
      finish ~fmt ~command:"snapshot"
        ~summary:
          [
            ("snapshot_file", GP.Json.String path);
            ("format_version", GP.Json.Int i.GP.Snapshot_io.version);
            ("nodes", GP.Json.Int i.GP.Snapshot_io.nodes);
            ("edges", GP.Json.Int i.GP.Snapshot_io.edges);
            ("symbols", GP.Json.Int i.GP.Snapshot_io.symbols);
            ("bytes", GP.Json.Int i.GP.Snapshot_io.bytes);
          ]
        []
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Snapshot file.")
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Describe a binary snapshot (after verifying magic, version, and checksum).")
    Term.(const run $ file_arg $ format_arg)

let snapshot_cmd =
  Cmd.group
    (Cmd.info "snapshot"
       ~doc:
         "Persisted binary snapshots: build once, then validate with $(b,--snapshot) to \
          skip parsing and CSR construction on every run.")
    [ snapshot_build_cmd; snapshot_info_cmd ]

(* ---- stats ---- *)

let stats_cmd =
  let run graph_path fmt =
    let g = or_die ~fmt ~command:"stats" (load_graph graph_path) in
    Format.printf "%a@." GP.Stats.pp (GP.Stats.compute g)
  in
  let graph_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"PGF graph file.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Describe a PGF graph.")
    Term.(const run $ graph_arg $ format_arg)

(* ---- serve ---- *)

(* The validation daemon: newline-delimited JSON requests over a unix
   or TCP socket, responses being the same envelopes `validate --format
   json` prints (compact-rendered).  All the robustness machinery lives
   in Pg_server; this command only parses flags, wires the signals, and
   prints the ready line. *)
let serve_cmd =
  let run socket host port workers max_pending max_request_kb read_timeout_ms drain_grace_ms
      watchdog_grace_ms deadline_ms max_violations retries plan_cache snapshot_cache debug_ops =
    let usage msg =
      prerr_endline ("gpgs serve: " ^ msg);
      exit exit_input
    in
    let address =
      match (socket, port) with
      | Some _, Some _ -> usage "--socket and --port are mutually exclusive"
      | Some path, None -> Pg_server.Server.Unix_socket path
      | None, Some p when p < 0 -> usage (Printf.sprintf "--port must be non-negative (got %d)" p)
      | None, Some p -> Pg_server.Server.Tcp (host, p)
      | None, None -> usage "one of --socket PATH or --port PORT is required"
    in
    if workers < 1 then usage (Printf.sprintf "--workers must be at least 1 (got %d)" workers);
    if max_pending < 0 then
      usage (Printf.sprintf "--max-pending must be non-negative (got %d)" max_pending);
    if max_request_kb < 1 then
      usage (Printf.sprintf "--max-request-kb must be at least 1 (got %d)" max_request_kb);
    if read_timeout_ms <= 0. then
      usage (Printf.sprintf "--read-timeout-ms must be positive (got %g)" read_timeout_ms);
    if drain_grace_ms < 0. then
      usage (Printf.sprintf "--drain-grace-ms must be non-negative (got %g)" drain_grace_ms);
    if watchdog_grace_ms < 0. then
      usage (Printf.sprintf "--watchdog-grace-ms must be non-negative (got %g)" watchdog_grace_ms);
    if retries < 0 then usage (Printf.sprintf "--retries must be non-negative (got %d)" retries);
    let service =
      Pg_server.Service.create
        ~config:
          {
            Pg_server.Service.plan_capacity = max 1 plan_cache;
            snapshot_capacity = max 1 snapshot_cache;
            default_deadline_ms = deadline_ms;
            default_max_violations = max_violations;
            retries;
            debug_ops;
          }
        ()
    in
    let config =
      {
        (Pg_server.Server.default_config address) with
        Pg_server.Server.workers;
        max_pending;
        max_request_bytes = max_request_kb * 1024;
        read_timeout_ms;
        drain_grace_ms;
        watchdog_grace_ms;
      }
    in
    let stop = Atomic.make false in
    let quit _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
    Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
    let on_ready resolved =
      (match resolved with
      | Pg_server.Server.Unix_socket path -> Printf.printf "gpgs: serving on unix:%s\n%!" path
      | Pg_server.Server.Tcp (h, p) -> Printf.printf "gpgs: serving on tcp:%s:%d\n%!" h p);
      ignore resolved
    in
    Pg_server.Server.run ~stop ~on_ready config service;
    (* run returning is the clean drain *)
    exit 0
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a unix domain socket at $(docv).")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Bind address for $(b,--port) (default: loopback).")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen on TCP $(docv); $(b,0) picks an ephemeral port (printed on the ready line).")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains; each serves one connection at a time.")
  in
  let max_pending_arg =
    Arg.(
      value & opt int 16
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Accepted connections allowed to wait for a worker; beyond it new connections \
             are shed with an $(b,SRV004) envelope.")
  in
  let max_request_kb_arg =
    Arg.(
      value & opt int 1024
      & info [ "max-request-kb" ] ~docv:"KB"
          ~doc:"Request frame size limit; larger frames get $(b,SRV002) and the connection closes.")
  in
  let read_timeout_arg =
    Arg.(
      value & opt float 30_000.
      & info [ "read-timeout-ms" ] ~docv:"MS"
          ~doc:"Close a connection that stays idle mid-frame for longer than $(docv).")
  in
  let drain_grace_arg =
    Arg.(
      value & opt float 2_000.
      & info [ "drain-grace-ms" ] ~docv:"MS"
          ~doc:
            "On SIGTERM/SIGINT: wait up to $(docv) for in-flight requests, then cancel \
             budgeted jobs at their next governor checkpoint.")
  in
  let watchdog_grace_arg =
    Arg.(
      value & opt float 10_000.
      & info [ "watchdog-grace-ms" ] ~docv:"MS"
          ~doc:
            "Slack past a request's own deadline before the watchdog cancels it as wedged \
             (the response gains an $(b,SRV006) diagnostic).")
  in
  let serve_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default validation deadline for requests that carry none; a run it cuts short \
             gains an $(b,SRV003) diagnostic.")
  in
  let serve_max_violations_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-violations" ] ~docv:"N"
          ~doc:"Default violation cap for requests that carry none.")
  in
  let serve_retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Supervisor retries per request for transient failures; crashes always become \
             $(b,SRV005) envelopes, never a dead worker.")
  in
  let plan_cache_arg =
    Arg.(
      value & opt int 16
      & info [ "plan-cache" ] ~docv:"N"
          ~doc:"Compiled-plan LRU capacity (content-hash invalidated).")
  in
  let snapshot_cache_arg =
    Arg.(
      value & opt int 16
      & info [ "snapshot-cache" ] ~docv:"N"
          ~doc:"Loaded-snapshot LRU capacity (content-hash invalidated).")
  in
  let debug_ops_arg =
    Arg.(
      value & flag
      & info [ "debug-ops" ]
          ~doc:"Honour the fault-injection ops (boom, sleep, stall) used by the test suite.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the validation daemon: newline-delimited JSON requests whose responses are \
          the $(b,validate --format json) envelopes, with plan/snapshot caching, a worker \
          pool, load shedding, and graceful drain on SIGTERM.")
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ workers_arg $ max_pending_arg
      $ max_request_kb_arg $ read_timeout_arg $ drain_grace_arg $ watchdog_grace_arg
      $ serve_deadline_arg $ serve_max_violations_arg $ serve_retries_arg $ plan_cache_arg
      $ snapshot_cache_arg $ debug_ops_arg)

let () =
  let info =
    Cmd.info "gpgs" ~version:"1.0.0"
      ~doc:"GraphQL SDL schemas for Property Graphs (Hartig & Hidders, GRADES-NDA 2019)."
  in
  let group =
    Cmd.group info
      [ parse_cmd; check_cmd; validate_cmd; batch_cmd; sat_cmd; reduce_cmd; extend_cmd; doc_cmd; cypher_cmd; gen_cmd; query_cmd; repair_cmd; diff_cmd; export_cmd; snapshot_cmd; stats_cmd; serve_cmd ]
  in
  let code =
    try
      (* remap cmdliner's reserved codes onto the documented 0/1/2/3 scheme *)
      match Cmd.eval ~catch:false group with
      | c when c = Cmd.Exit.cli_error -> exit_input
      | c when c = Cmd.Exit.internal_error -> exit_budget
      | c -> c
    with
    | Sys_error msg ->
      prerr_endline ("error: " ^ msg);
      exit_input
    | GP.Snapshot.Build_error msg ->
      prerr_endline ("error: " ^ msg);
      exit_input
    | Invalid_argument msg ->
      prerr_endline ("error: " ^ msg);
      exit_input
    | e ->
      prerr_endline ("internal error: " ^ Printexc.to_string e);
      exit_budget
  in
  exit code
